(* End-to-end tests of ZoFS through FSLibs (dispatcher + µFS + KernFS). *)

open Testkit
module V = Treasury.Vfs
module Ft = Treasury.Fs_types
module E = Treasury.Errno

let test_write_read_roundtrip () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/hello.txt" "hello coffer world");
      Alcotest.(check string) "read back" "hello coffer world"
        (ok_or_fail (V.read_file fs "/hello.txt")))

let test_open_missing () =
  let w = make_world () in
  in_proc w (fun fs ->
      expect_err E.ENOENT (V.openf fs "/missing" [ Ft.O_RDONLY ] 0))

let test_create_excl () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/f" "x");
      expect_err E.EEXIST
        (V.openf fs "/f" [ Ft.O_CREAT; Ft.O_EXCL; Ft.O_WRONLY ] 0o644))

let test_sequential_and_random_io () =
  let w = make_world () in
  in_proc w (fun fs ->
      let fd = ok_or_fail (V.openf fs "/io" [ Ft.O_CREAT; Ft.O_RDWR ] 0o644) in
      (* write 10000 bytes crossing block boundaries *)
      let data = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
      Alcotest.(check int) "written" 10_000 (ok_or_fail (V.write fs fd data));
      (* pread in the middle *)
      let buf = Bytes.create 100 in
      let n = ok_or_fail (V.pread fs fd ~off:4090 buf 0 100) in
      Alcotest.(check int) "pread len" 100 n;
      Alcotest.(check string) "pread data" (String.sub data 4090 100)
        (Bytes.to_string buf);
      (* pwrite overwrite *)
      ignore (ok_or_fail (V.pwrite fs fd ~off:5000 "OVERWRITE"));
      let buf = Bytes.create 9 in
      ignore (ok_or_fail (V.pread fs fd ~off:5000 buf 0 9));
      Alcotest.(check string) "overwritten" "OVERWRITE" (Bytes.to_string buf);
      ok_or_fail (V.close fs fd))

let test_append_mode () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.append_file fs "/log" "one ");
      ok_or_fail (V.append_file fs "/log" "two ");
      ok_or_fail (V.append_file fs "/log" "three");
      Alcotest.(check string) "appended" "one two three"
        (ok_or_fail (V.read_file fs "/log")))

let test_lseek () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/s" "0123456789");
      let fd = ok_or_fail (V.openf fs "/s" [ Ft.O_RDONLY ] 0) in
      Alcotest.(check int) "seek set" 4
        (ok_or_fail (V.lseek fs fd 4 Ft.SEEK_SET));
      let b = Bytes.create 2 in
      ignore (ok_or_fail (V.read fs fd b 0 2));
      Alcotest.(check string) "after seek" "45" (Bytes.to_string b);
      Alcotest.(check int) "seek cur" 8 (ok_or_fail (V.lseek fs fd 2 Ft.SEEK_CUR));
      Alcotest.(check int) "seek end" 9
        (ok_or_fail (V.lseek fs fd (-1) Ft.SEEK_END));
      ok_or_fail (V.close fs fd))

let test_large_file_indirect_blocks () =
  let w = make_world ~pages:16384 () in
  in_proc w (fun fs ->
      (* 300 KB: direct (128 KB) + indirect range *)
      let chunk = String.init 4096 (fun i -> Char.chr (i mod 256)) in
      let fd = ok_or_fail (V.openf fs "/big" [ Ft.O_CREAT; Ft.O_RDWR ] 0o644) in
      for _ = 1 to 75 do
        ignore (ok_or_fail (V.write fs fd chunk))
      done;
      let st = ok_or_fail (V.fstat fs fd) in
      Alcotest.(check int) "size" (75 * 4096) st.Ft.st_size;
      (* verify a block deep in the indirect range *)
      let buf = Bytes.create 4096 in
      ignore (ok_or_fail (V.pread fs fd ~off:(70 * 4096) buf 0 4096));
      Alcotest.(check string) "indirect data" chunk (Bytes.to_string buf);
      ok_or_fail (V.close fs fd))

let test_sparse_holes_read_zero () =
  let w = make_world () in
  in_proc w (fun fs ->
      let fd = ok_or_fail (V.openf fs "/sparse" [ Ft.O_CREAT; Ft.O_RDWR ] 0o644) in
      ignore (ok_or_fail (V.pwrite fs fd ~off:(8 * 4096) "end"));
      let st = ok_or_fail (V.fstat fs fd) in
      Alcotest.(check int) "size covers hole" ((8 * 4096) + 3) st.Ft.st_size;
      let buf = Bytes.make 10 'x' in
      ignore (ok_or_fail (V.pread fs fd ~off:4096 buf 0 10));
      Alcotest.(check string) "hole is zeros" (String.make 10 '\000')
        (Bytes.to_string buf);
      ok_or_fail (V.close fs fd))

let test_truncate () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/t" (String.make 9000 'a'));
      ok_or_fail (V.truncate fs "/t" 100);
      Alcotest.(check string) "shrunk" (String.make 100 'a')
        (ok_or_fail (V.read_file fs "/t"));
      (* growing again exposes zeros, not stale bytes *)
      ok_or_fail (V.truncate fs "/t" 200);
      let s = ok_or_fail (V.read_file fs "/t") in
      Alcotest.(check string) "zeros after regrow"
        (String.make 100 'a' ^ String.make 100 '\000')
        s)

let test_o_trunc () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/t2" "long old content");
      ok_or_fail (V.write_file fs "/t2" "new");
      Alcotest.(check string) "truncated by O_TRUNC" "new"
        (ok_or_fail (V.read_file fs "/t2")))

let test_mkdir_tree_and_readdir () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/a" 0o755);
      ok_or_fail (V.mkdir fs "/a/b" 0o755);
      ok_or_fail (V.write_file fs "/a/b/f1" "1");
      ok_or_fail (V.write_file fs "/a/b/f2" "2");
      ok_or_fail (V.mkdir fs "/a/b/sub" 0o755);
      let names =
        ok_or_fail (V.readdir fs "/a/b")
        |> List.map (fun d -> d.Ft.d_name)
        |> List.sort compare
      in
      Alcotest.(check (list string)) "entries" [ "f1"; "f2"; "sub" ] names;
      let kinds =
        ok_or_fail (V.readdir fs "/a/b")
        |> List.map (fun d -> (d.Ft.d_name, d.Ft.d_kind = Ft.Directory))
        |> List.sort compare
      in
      Alcotest.(check (list (pair string bool)))
        "kinds"
        [ ("f1", false); ("f2", false); ("sub", true) ]
        kinds)

let test_mkdir_exists () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/d" 0o755);
      expect_err E.EEXIST (V.mkdir fs "/d" 0o755);
      expect_err E.ENOENT (V.mkdir fs "/no/such/parent" 0o755))

let test_enoent_intermediate () =
  let w = make_world () in
  in_proc w (fun fs ->
      expect_err E.ENOENT (V.stat fs "/nope/deeper");
      ok_or_fail (V.write_file fs "/plain" "x");
      expect_err E.ENOTDIR (V.stat fs "/plain/child"))

let test_unlink () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/dead" "x");
      ok_or_fail (V.unlink fs "/dead");
      expect_err E.ENOENT (V.stat fs "/dead");
      expect_err E.ENOENT (V.unlink fs "/dead");
      ok_or_fail (V.mkdir fs "/adir" 0o755);
      expect_err E.EISDIR (V.unlink fs "/adir"))

let test_rmdir () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/r" 0o755);
      ok_or_fail (V.write_file fs "/r/f" "x");
      expect_err E.ENOTEMPTY (V.rmdir fs "/r");
      ok_or_fail (V.unlink fs "/r/f");
      ok_or_fail (V.rmdir fs "/r");
      expect_err E.ENOENT (V.stat fs "/r");
      ok_or_fail (V.write_file fs "/file" "x");
      expect_err E.ENOTDIR (V.rmdir fs "/file"))

let test_rename_same_dir () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/old" "content");
      ok_or_fail (V.rename fs "/old" "/new");
      expect_err E.ENOENT (V.stat fs "/old");
      Alcotest.(check string) "moved" "content" (ok_or_fail (V.read_file fs "/new")))

let test_rename_across_dirs_same_coffer () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/d1" 0o777);
      ok_or_fail (V.mkdir fs "/d2" 0o777);
      ok_or_fail (V.write_file fs "/d1/f" "move me");
      ok_or_fail (V.rename fs "/d1/f" "/d2/g");
      Alcotest.(check string) "moved" "move me"
        (ok_or_fail (V.read_file fs "/d2/g"));
      expect_err E.ENOENT (V.stat fs "/d1/f"))

let test_rename_replaces_destination () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/src" "SRC");
      ok_or_fail (V.write_file fs "/dst" "DST");
      ok_or_fail (V.rename fs "/src" "/dst");
      Alcotest.(check string) "replaced" "SRC" (ok_or_fail (V.read_file fs "/dst")))

let test_stat_fields () =
  let w = make_world () in
  in_proc ~uid:1234 w (fun fs ->
      ok_or_fail (V.write_file fs "/statme" ~mode:0o777 "12345");
      let st = ok_or_fail (V.stat fs "/statme") in
      Alcotest.(check int) "size" 5 st.Ft.st_size;
      Alcotest.(check bool) "regular" true (st.Ft.st_kind = Ft.Regular);
      Alcotest.(check int) "uid" 1234 st.Ft.st_uid;
      let std = ok_or_fail (V.stat fs "/") in
      Alcotest.(check bool) "root dir" true (std.Ft.st_kind = Ft.Directory))

let test_symlink_follow () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/real" 0o755);
      ok_or_fail (V.write_file fs "/real/data" "through the link");
      ok_or_fail (V.symlink fs ~target:"/real" ~link:"/lnk");
      Alcotest.(check string) "read via symlink" "through the link"
        (ok_or_fail (V.read_file fs "/lnk/data"));
      Alcotest.(check string) "readlink" "/real"
        (ok_or_fail (V.readlink fs "/lnk"));
      let st = ok_or_fail (V.lstat fs "/lnk") in
      Alcotest.(check bool) "lstat sees link" true (st.Ft.st_kind = Ft.Symlink);
      let st = ok_or_fail (V.stat fs "/lnk") in
      Alcotest.(check bool) "stat follows" true (st.Ft.st_kind = Ft.Directory))

let test_symlink_relative () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/dir" 0o755);
      ok_or_fail (V.write_file fs "/dir/target" "rel");
      ok_or_fail (V.symlink fs ~target:"target" ~link:"/dir/ln");
      Alcotest.(check string) "relative link" "rel"
        (ok_or_fail (V.read_file fs "/dir/ln")))

let test_symlink_loop () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.symlink fs ~target:"/b" ~link:"/a");
      ok_or_fail (V.symlink fs ~target:"/a" ~link:"/b");
      expect_err E.ELOOP (V.stat fs "/a"))

let test_many_files_in_one_dir () =
  (* Exercises the two-level hash directory: inline slots spill into chain
     pages (16 inline per second-level page). *)
  let w = make_world ~pages:16384 () in
  in_proc w (fun fs ->
      ok_or_fail (V.mkdir fs "/big" 0o755);
      for i = 1 to 800 do
        ok_or_fail (V.write_file fs (Printf.sprintf "/big/file%04d" i) "x")
      done;
      Alcotest.(check int) "readdir sees all" 800
        (List.length (ok_or_fail (V.readdir fs "/big")));
      (* spot-check lookups *)
      for i = 1 to 800 do
        if i mod 97 = 0 then
          ignore (ok_or_fail (V.stat fs (Printf.sprintf "/big/file%04d" i)))
      done;
      (* delete half, re-check *)
      for i = 1 to 400 do
        ok_or_fail (V.unlink fs (Printf.sprintf "/big/file%04d" i))
      done;
      Alcotest.(check int) "after unlink" 400
        (List.length (ok_or_fail (V.readdir fs "/big"))))

let test_different_perm_creates_sub_coffer () =
  let w = make_world () in
  let root_cid = Treasury.Kernfs.root_coffer w.kfs in
  in_proc w (fun fs ->
      (* root dir coffer is 0o777 uid 0; a 0o600 file owned by uid 1000
         cannot share it *)
      ok_or_fail (V.write_file fs "/secret" ~mode:0o600 "classified");
      Alcotest.(check string) "readable by owner" "classified"
        (ok_or_fail (V.read_file fs "/secret")));
  (* The file got its own coffer, registered in the path map. *)
  Sim.run_thread (fun () ->
      let cid = ok_or_fail (Treasury.Kernfs.coffer_find w.kfs "/secret") in
      Alcotest.(check bool) "distinct coffer" true (cid <> root_cid);
      let info = ok_or_fail (Treasury.Kernfs.coffer_stat w.kfs cid) in
      Alcotest.(check int) "coffer mode" 0o600 info.Treasury.Coffer.mode;
      Alcotest.(check int) "coffer uid" 1000 info.Treasury.Coffer.uid)

let test_cross_coffer_isolation_between_users () =
  let w = make_world () in
  (* user A creates a private file *)
  in_proc ~uid:100 w (fun fs ->
      ok_or_fail (V.write_file fs "/private" ~mode:0o600 "A's data"));
  (* user B cannot open it *)
  in_proc ~uid:200 w (fun fs ->
      expect_err E.EACCES (V.openf fs "/private" [ Ft.O_RDONLY ] 0));
  (* but A still can *)
  in_proc ~uid:100 w (fun fs ->
      Alcotest.(check string) "owner reads" "A's data"
        (ok_or_fail (V.read_file fs "/private")))

let test_same_perm_files_share_coffer () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      (* root creates files matching the root coffer's permission *)
      ok_or_fail (V.write_file fs "/shared1" ~mode:0o777 "a");
      ok_or_fail (V.write_file fs "/shared2" ~mode:0o777 "b"));
  Sim.run_thread (fun () ->
      expect_err E.ENOENT (Treasury.Kernfs.coffer_find w.kfs "/shared1");
      expect_err E.ENOENT (Treasury.Kernfs.coffer_find w.kfs "/shared2"))

let test_chmod_same_class_no_split () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/f" ~mode:0o777 "x");
      (* execute-bit-only change: no rw change, stays in coffer *)
      ok_or_fail (V.chmod fs "/f" 0o776);
      let st = ok_or_fail (V.stat fs "/f") in
      Alcotest.(check int) "mode updated" 0o776 st.Ft.st_mode);
  Sim.run_thread (fun () ->
      expect_err E.ENOENT (Treasury.Kernfs.coffer_find w.kfs "/f"))

let test_chmod_splits_coffer () =
  let w = make_world () in
  in_proc ~uid:1000 w (fun fs ->
      ok_or_fail (V.mkdir fs "/home" 0o755);
      ok_or_fail (V.write_file fs "/home/doc" ~mode:0o755 "contents");
      (* /home and /home/doc share a coffer (same perm, same owner). *)
      ok_or_fail (V.chmod fs "/home/doc" 0o600);
      let st = ok_or_fail (V.stat fs "/home/doc") in
      Alcotest.(check int) "new mode" 0o600 st.Ft.st_mode;
      Alcotest.(check string) "data intact" "contents"
        (ok_or_fail (V.read_file fs "/home/doc")));
  Sim.run_thread (fun () ->
      let cid = ok_or_fail (Treasury.Kernfs.coffer_find w.kfs "/home/doc") in
      let info = ok_or_fail (Treasury.Kernfs.coffer_stat w.kfs cid) in
      Alcotest.(check int) "split coffer mode" 0o600 info.Treasury.Coffer.mode)

let test_chmod_back_merges_into_parent_coffer () =
  (* Split a file out with chmod, then chmod it back: the coffer merges into
     the parent's and the dentry becomes a same-coffer entry again. *)
  let w = make_world () in
  in_proc ~uid:1000 w (fun fs ->
      ok_or_fail (V.mkdir fs "/home" 0o755);
      ok_or_fail (V.write_file fs "/home/doc" ~mode:0o644 "keep me");
      ok_or_fail (V.chmod fs "/home/doc" 0o600));
  let split_cid =
    Sim.run_thread (fun () ->
        ok_or_fail (Treasury.Kernfs.coffer_find w.kfs "/home/doc"))
  in
  Alcotest.(check bool) "split happened" true (split_cid > 0);
  in_proc ~uid:1000 w (fun fs ->
      ok_or_fail (V.chmod fs "/home/doc" 0o644);
      Alcotest.(check string) "data survives the merge" "keep me"
        (ok_or_fail (V.read_file fs "/home/doc"));
      let st = ok_or_fail (V.stat fs "/home/doc") in
      Alcotest.(check int) "mode" 0o644 st.Ft.st_mode);
  Sim.run_thread (fun () ->
      expect_err E.ENOENT (Treasury.Kernfs.coffer_find w.kfs "/home/doc"))

let test_chmod_other_user_rejected () =
  let w = make_world () in
  in_proc ~uid:100 w (fun fs ->
      ok_or_fail (V.write_file fs "/mine" ~mode:0o666 "x"));
  in_proc ~uid:200 w (fun fs -> expect_err E.EPERM (V.chmod fs "/mine" 0o600))

let test_one_coffer_variant_chmod_stays_local () =
  let w = make_world () in
  let variant = { Zofs.Ufs.default_variant with Zofs.Ufs.one_coffer = true } in
  in_proc ~uid:1000 ~variant w (fun fs ->
      ok_or_fail (V.write_file fs "/f" ~mode:0o666 "x");
      ok_or_fail (V.chmod fs "/f" 0o600);
      let st = ok_or_fail (V.stat fs "/f") in
      Alcotest.(check int) "mode" 0o600 st.Ft.st_mode);
  (* no coffer was created for /f despite the permission change *)
  Sim.run_thread (fun () ->
      expect_err E.ENOENT (Treasury.Kernfs.coffer_find w.kfs "/f"))

let test_two_processes_share_file () =
  let w = make_world () in
  (* process 1 writes, process 2 reads the same coffer concurrently *)
  let world = Sim.create () in
  let p1 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let p2 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let read_back = ref "" in
  Sim.spawn world ~proc:p1 ~name:"writer" (fun () ->
      let fs = vfs w in
      ok_or_fail (V.write_file fs "/shared" ~mode:0o777 "from p1"));
  Sim.spawn world ~proc:p2 ~at:1_000_000 ~name:"reader" (fun () ->
      let fs = vfs w in
      read_back := ok_or_fail (V.read_file fs "/shared"));
  Sim.run world;
  Alcotest.(check string) "cross-process read" "from p1" !read_back

let test_concurrent_appends_interleave_safely () =
  let w = make_world () in
  let world = Sim.create () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let fs = ref None in
  Sim.spawn world ~proc ~name:"setup" (fun () ->
      let v = vfs w in
      ok_or_fail (V.write_file v "/applog" ~mode:0o777 "");
      fs := Some v);
  Sim.run world;
  let v = Option.get !fs in
  let world = Sim.create () in
  for i = 1 to 4 do
    Sim.spawn world ~proc ~name:(Printf.sprintf "appender%d" i) (fun () ->
        for _ = 1 to 10 do
          ignore (ok_or_fail (V.append_file v "/applog" (String.make 10 (Char.chr (Char.code '0' + i)))))
        done)
  done;
  Sim.run world;
  Sim.run_thread ~proc (fun () ->
      let content = ok_or_fail (V.read_file v "/applog") in
      Alcotest.(check int) "no lost appends" 400 (String.length content))

let test_fd_semantics_through_dispatcher () =
  let w = make_world () in
  let disp_holder = ref None in
  Sim.run_thread (fun () ->
      let disp = fslib w in
      disp_holder := Some disp;
      let fs = Treasury.Dispatcher.as_vfs disp in
      ok_or_fail (V.write_file fs "/f" "0123456789");
      let fd = ok_or_fail (V.openf fs "/f" [ Ft.O_RDONLY ] 0) in
      let fd2 = ok_or_fail (Treasury.Dispatcher.dup disp fd) in
      let b = Bytes.create 3 in
      ignore (ok_or_fail (V.read fs fd b 0 3));
      (* dup shares the offset *)
      ignore (ok_or_fail (V.read fs fd2 b 0 3));
      Alcotest.(check string) "shared offset" "345" (Bytes.to_string b);
      ok_or_fail (V.close fs fd);
      ignore (ok_or_fail (V.read fs fd2 b 0 3));
      Alcotest.(check string) "fd2 alive after fd close" "678"
        (Bytes.to_string b);
      ok_or_fail (V.close fs fd2))

let test_cwd_and_relative_paths () =
  let w = make_world () in
  Sim.run_thread (fun () ->
      let disp = fslib w in
      let fs = Treasury.Dispatcher.as_vfs disp in
      ok_or_fail (V.mkdir fs "/work" 0o755);
      ok_or_fail (V.write_file fs "/work/notes" "hi");
      ok_or_fail (Treasury.Dispatcher.chdir disp "/work");
      Alcotest.(check string) "getcwd" "/work" (Treasury.Dispatcher.getcwd disp);
      Alcotest.(check string) "relative open" "hi"
        (ok_or_fail (V.read_file fs "notes"));
      ok_or_fail (V.write_file fs "local" "created relative");
      Alcotest.(check string) "relative create visible absolutely"
        "created relative"
        (ok_or_fail (V.read_file fs "/work/local")))

let test_write_to_readonly_fd_rejected () =
  let w = make_world () in
  in_proc w (fun fs ->
      ok_or_fail (V.write_file fs "/ro" "x");
      let fd = ok_or_fail (V.openf fs "/ro" [ Ft.O_RDONLY ] 0) in
      expect_err E.EBADF (V.write fs fd "nope");
      ok_or_fail (V.close fs fd))

let test_group_readonly_access () =
  let w = make_world () in
  (* owner writes a group-readable file *)
  in_proc ~uid:100 w (fun fs ->
      ok_or_fail (V.write_file fs "/grp" ~mode:0o640 "group data"));
  (* same-gid user may read but not write *)
  let proc = Sim.Proc.create ~uid:300 ~gid:300 ~groups:[ 100 ] () in
  Sim.run_thread ~proc (fun () ->
      let fs = vfs w in
      Alcotest.(check string) "group read" "group data"
        (ok_or_fail (V.read_file fs "/grp"));
      expect_err E.EACCES (V.openf fs "/grp" [ Ft.O_WRONLY ] 0))

let qcheck_fs_matches_model =
  (* Model-based: random create/write/unlink sequences must match an
     in-memory model. *)
  QCheck.Test.make ~name:"zofs behaves like a map of paths to contents"
    ~count:30
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_range 0 9) bool (string_of_size (Gen.int_range 0 100))))
    (fun ops ->
      let w = make_world () in
      in_proc ~uid:0 w (fun fs ->
          let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
          List.iter
            (fun (n, create, data) ->
              let path = Printf.sprintf "/file%d" n in
              if create then begin
                match V.write_file fs path ~mode:0o777 data with
                | Ok () -> Hashtbl.replace model path data
                | Error _ -> ()
              end
              else begin
                (match V.unlink fs path with Ok () | Error _ -> ());
                Hashtbl.remove model path
              end)
            ops;
          Hashtbl.fold
            (fun path data ok ->
              ok && V.read_file fs path = Ok data)
            model true
          && List.for_all
               (fun n ->
                 let path = Printf.sprintf "/file%d" n in
                 Hashtbl.mem model path || not (V.exists fs path))
               [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]))

let () =
  Alcotest.run "zofs"
    [
      ( "files",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "open missing" `Quick test_open_missing;
          Alcotest.test_case "O_EXCL" `Quick test_create_excl;
          Alcotest.test_case "sequential+random io" `Quick
            test_sequential_and_random_io;
          Alcotest.test_case "append mode" `Quick test_append_mode;
          Alcotest.test_case "lseek" `Quick test_lseek;
          Alcotest.test_case "indirect blocks" `Quick
            test_large_file_indirect_blocks;
          Alcotest.test_case "sparse holes" `Quick test_sparse_holes_read_zero;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "O_TRUNC" `Quick test_o_trunc;
          Alcotest.test_case "read-only fd" `Quick test_write_to_readonly_fd_rejected;
        ] );
      ( "directories",
        [
          Alcotest.test_case "mkdir tree + readdir" `Quick
            test_mkdir_tree_and_readdir;
          Alcotest.test_case "mkdir exists" `Quick test_mkdir_exists;
          Alcotest.test_case "enoent/enotdir" `Quick test_enoent_intermediate;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "large directory" `Slow test_many_files_in_one_dir;
        ] );
      ( "rename",
        [
          Alcotest.test_case "same dir" `Quick test_rename_same_dir;
          Alcotest.test_case "across dirs" `Quick
            test_rename_across_dirs_same_coffer;
          Alcotest.test_case "replaces destination" `Quick
            test_rename_replaces_destination;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "stat fields" `Quick test_stat_fields;
          Alcotest.test_case "symlink follow" `Quick test_symlink_follow;
          Alcotest.test_case "symlink relative" `Quick test_symlink_relative;
          Alcotest.test_case "symlink loop" `Quick test_symlink_loop;
        ] );
      ( "coffers",
        [
          Alcotest.test_case "different perm → sub-coffer" `Quick
            test_different_perm_creates_sub_coffer;
          Alcotest.test_case "user isolation" `Quick
            test_cross_coffer_isolation_between_users;
          Alcotest.test_case "same perm shares coffer" `Quick
            test_same_perm_files_share_coffer;
          Alcotest.test_case "chmod same class" `Quick test_chmod_same_class_no_split;
          Alcotest.test_case "chmod splits" `Quick test_chmod_splits_coffer;
          Alcotest.test_case "chmod back merges" `Quick
            test_chmod_back_merges_into_parent_coffer;
          Alcotest.test_case "chmod foreign" `Quick test_chmod_other_user_rejected;
          Alcotest.test_case "one-coffer variant" `Quick
            test_one_coffer_variant_chmod_stays_local;
          Alcotest.test_case "group read-only" `Quick test_group_readonly_access;
        ] );
      ( "processes",
        [
          Alcotest.test_case "two processes share" `Quick
            test_two_processes_share_file;
          Alcotest.test_case "concurrent appends" `Quick
            test_concurrent_appends_interleave_safely;
          Alcotest.test_case "fd semantics" `Quick
            test_fd_semantics_through_dispatcher;
          Alcotest.test_case "cwd + relative paths" `Quick
            test_cwd_and_relative_paths;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_fs_matches_model ]);
    ]
