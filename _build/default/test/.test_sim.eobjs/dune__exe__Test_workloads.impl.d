test/test_workloads.ml: Alcotest List Printf Sim Treasury Workloads
