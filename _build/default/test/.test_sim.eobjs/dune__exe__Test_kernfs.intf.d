test/test_kernfs.mli:
