test/test_survey.mli:
