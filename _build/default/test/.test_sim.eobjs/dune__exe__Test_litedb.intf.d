test/test_litedb.mli:
