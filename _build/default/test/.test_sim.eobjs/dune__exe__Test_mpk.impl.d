test/test_mpk.ml: Alcotest Mpk Nvm Sim
