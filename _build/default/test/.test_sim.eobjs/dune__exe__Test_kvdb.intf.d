test/test_kvdb.mli:
