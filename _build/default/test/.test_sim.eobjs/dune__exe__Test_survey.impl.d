test/test_survey.ml: Alcotest Array Hashtbl List Option Printf Survey Testkit Treasury
