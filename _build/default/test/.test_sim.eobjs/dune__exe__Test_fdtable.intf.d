test/test_fdtable.mli:
