test/test_litedb.ml: Alcotest Buffer Bytes Gen Int32 List Litedb Map Printf QCheck QCheck_alcotest String Testkit Treasury
