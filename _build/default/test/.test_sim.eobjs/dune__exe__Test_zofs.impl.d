test/test_zofs.ml: Alcotest Bytes Char Gen Hashtbl List Option Printf QCheck QCheck_alcotest Sim String Testkit Treasury Zofs
