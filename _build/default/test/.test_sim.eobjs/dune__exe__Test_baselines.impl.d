test/test_baselines.ml: Alcotest Baselines Char List Nvm Printf Sim String Treasury
