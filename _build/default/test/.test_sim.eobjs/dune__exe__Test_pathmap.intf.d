test/test_pathmap.mli:
