test/test_kernfs.ml: Alcotest List Mpk Nvm Printf Sim Treasury
