test/test_recovery.ml: Alcotest Gen Hashtbl List Mpk Nvm Option Printf QCheck QCheck_alcotest Sim String Testkit Treasury Zofs
