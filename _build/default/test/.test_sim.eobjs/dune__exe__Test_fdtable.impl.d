test/test_fdtable.ml: Alcotest List QCheck QCheck_alcotest Treasury
