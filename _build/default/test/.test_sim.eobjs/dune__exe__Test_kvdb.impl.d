test/test_kvdb.ml: Alcotest Fun Gen Hashtbl Kvdb List Nvm Printf QCheck QCheck_alcotest String Testkit Treasury
