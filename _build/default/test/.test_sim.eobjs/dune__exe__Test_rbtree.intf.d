test/test_rbtree.mli:
