test/test_alloc_table.mli:
