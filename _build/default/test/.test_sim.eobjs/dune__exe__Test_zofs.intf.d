test/test_zofs.mli:
