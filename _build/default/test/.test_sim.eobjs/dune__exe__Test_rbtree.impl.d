test/test_rbtree.ml: Alcotest Int List Map Option QCheck QCheck_alcotest Treasury
