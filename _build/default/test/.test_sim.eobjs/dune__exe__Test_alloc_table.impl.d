test/test_alloc_table.ml: Alcotest Gen Hashtbl List Nvm Option QCheck QCheck_alcotest Treasury
