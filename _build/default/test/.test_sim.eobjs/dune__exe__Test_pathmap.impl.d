test/test_pathmap.ml: Alcotest Hashtbl List Nvm Printf QCheck QCheck_alcotest String Treasury
