test/test_nvm.ml: Alcotest Char Gen List Nvm QCheck QCheck_alcotest Sim String
