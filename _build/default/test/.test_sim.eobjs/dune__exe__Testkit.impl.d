test/testkit.ml: Alcotest Mpk Nvm Sim Treasury Zofs
