test/test_safety.ml: Alcotest Mpk Nvm Option Printf Sim String Testkit Treasury Zofs
