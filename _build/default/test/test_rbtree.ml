(* Tests for the red-black tree used by KernFS space tracking. *)

module R = Treasury.Rbtree

let test_empty () =
  let t = R.create () in
  Alcotest.(check bool) "empty" true (R.is_empty t);
  Alcotest.(check int) "cardinal" 0 (R.cardinal t);
  Alcotest.(check (option int)) "find" None (R.find_opt t 5);
  Alcotest.(check (option (pair int int))) "min" None (R.min_binding t);
  ignore (R.check_invariants t)

let test_insert_find () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k (k * 10)) [ 5; 2; 8; 1; 9; 3 ];
  Alcotest.(check int) "cardinal" 6 (R.cardinal t);
  Alcotest.(check (option int)) "find 8" (Some 80) (R.find_opt t 8);
  Alcotest.(check (option int)) "find 4" None (R.find_opt t 4);
  Alcotest.(check bool) "mem" true (R.mem t 1);
  ignore (R.check_invariants t)

let test_insert_replaces () =
  let t = R.create () in
  R.insert t 1 "a";
  R.insert t 1 "b";
  Alcotest.(check int) "no dup" 1 (R.cardinal t);
  Alcotest.(check (option string)) "replaced" (Some "b") (R.find_opt t 1)

let test_ordered_iteration () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k ()) [ 42; 7; 19; 3; 88; 1; 55 ];
  Alcotest.(check (list int))
    "sorted"
    [ 1; 3; 7; 19; 42; 55; 88 ]
    (List.map fst (R.to_list t))

let test_min_max () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k ()) [ 4; 2; 9 ];
  Alcotest.(check (option (pair int unit))) "min" (Some (2, ())) (R.min_binding t);
  Alcotest.(check (option (pair int unit))) "max" (Some (9, ())) (R.max_binding t)

let test_geq_leq () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k ()) [ 10; 20; 30 ];
  Alcotest.(check (option (pair int unit))) "geq 15" (Some (20, ())) (R.find_geq t 15);
  Alcotest.(check (option (pair int unit))) "geq 20" (Some (20, ())) (R.find_geq t 20);
  Alcotest.(check (option (pair int unit))) "geq 31" None (R.find_geq t 31);
  Alcotest.(check (option (pair int unit))) "leq 15" (Some (10, ())) (R.find_leq t 15);
  Alcotest.(check (option (pair int unit))) "leq 10" (Some (10, ())) (R.find_leq t 10);
  Alcotest.(check (option (pair int unit))) "leq 9" None (R.find_leq t 9)

let test_remove () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k ()) [ 5; 2; 8; 1; 9; 3; 7 ];
  Alcotest.(check bool) "removed" true (R.remove t 5);
  Alcotest.(check bool) "not there" false (R.remove t 5);
  Alcotest.(check (option unit)) "gone" None (R.find_opt t 5);
  Alcotest.(check int) "cardinal" 6 (R.cardinal t);
  ignore (R.check_invariants t);
  List.iter (fun k -> ignore (R.remove t k)) [ 1; 2; 3; 7; 8; 9 ];
  Alcotest.(check bool) "empty again" true (R.is_empty t)

let test_find_first () =
  let t = R.create () in
  List.iter (fun k -> R.insert t k (100 - k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (option (pair int int)))
    "first with value < 97" (Some (4, 96))
    (R.find_first t (fun _ v -> v < 97))

let test_large_sequential () =
  let t = R.create () in
  for i = 1 to 10_000 do
    R.insert t i i
  done;
  ignore (R.check_invariants t);
  Alcotest.(check int) "cardinal" 10_000 (R.cardinal t);
  for i = 1 to 5000 do
    ignore (R.remove t (i * 2))
  done;
  ignore (R.check_invariants t);
  Alcotest.(check int) "half left" 5000 (R.cardinal t);
  Alcotest.(check (option int)) "odd kept" (Some 4999) (R.find_opt t 4999);
  Alcotest.(check (option int)) "even gone" None (R.find_opt t 5000)

let qcheck_against_map =
  (* Model-based test: a random op sequence must behave like Stdlib.Map. *)
  QCheck.Test.make ~name:"rbtree behaves like Map" ~count:200
    QCheck.(
      list
        (pair bool (int_range 0 200))) (* (insert?, key) *)
    (fun ops ->
      let module M = Map.Make (Int) in
      let t = R.create () in
      let m = ref M.empty in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            R.insert t k k;
            m := M.add k k !m
          end
          else begin
            ignore (R.remove t k);
            m := M.remove k !m
          end)
        ops;
      ignore (R.check_invariants t);
      R.to_list t = M.bindings !m)

let qcheck_geq_matches_model =
  QCheck.Test.make ~name:"find_geq matches model" ~count:200
    QCheck.(pair (list (int_range 0 100)) (int_range 0 100))
    (fun (keys, probe) ->
      let t = R.create () in
      List.iter (fun k -> R.insert t k ()) keys;
      let expected = List.sort_uniq compare keys |> List.find_opt (fun k -> k >= probe) in
      R.find_geq t probe = Option.map (fun k -> (k, ())) expected)

let () =
  Alcotest.run "rbtree"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "insert replaces" `Quick test_insert_replaces;
          Alcotest.test_case "ordered iteration" `Quick test_ordered_iteration;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "geq/leq" `Quick test_geq_leq;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "find_first" `Quick test_find_first;
          Alcotest.test_case "large sequential" `Quick test_large_sequential;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_against_map;
          QCheck_alcotest.to_alcotest qcheck_geq_matches_model;
        ] );
    ]
