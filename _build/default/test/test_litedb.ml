(* Tests for the SQLite-like storage engine and the TPC-C driver. *)

open Testkit
module V = Treasury.Vfs
module R = Litedb.Record

let okd = function
  | Ok v -> v
  | Error e -> Alcotest.failf "litedb error: %s" (Treasury.Errno.to_string e)

(* ---- record ----------------------------------------------------------------- *)

let test_record_roundtrip () =
  let row = [ R.Int 42; R.Str "hello"; R.Real 3.25; R.Int (-7); R.Str "" ] in
  let row' = R.decode (R.encode row) in
  Alcotest.(check bool) "roundtrip" true (List.for_all2 R.equal_value row row')

let test_index_key_order () =
  (* numeric order must survive the string encoding *)
  let k a = R.index_key [ R.Int a ] in
  Alcotest.(check bool) "2 < 10" true (k 2 < k 10);
  Alcotest.(check bool) "999 < 1000" true (k 999 < k 1000);
  let kk a b = R.index_key [ R.Int a; R.Int b ] in
  Alcotest.(check bool) "composite" true (kk 1 99 < kk 2 1)

(* ---- pager ------------------------------------------------------------------- *)

let test_pager_txn_commit_rollback () =
  let w = make_world ~pages:16384 () in
  in_proc ~uid:0 w (fun fs ->
      let p = okd (Litedb.Pager.open_ fs "/test.db") in
      Litedb.Pager.begin_txn p;
      let pg = Litedb.Pager.alloc_page p in
      let b = Bytes.make Litedb.Pager.page_size 'a' in
      Litedb.Pager.write_page p pg b;
      okd (Litedb.Pager.commit p);
      (* rollback undoes changes *)
      Litedb.Pager.begin_txn p;
      Litedb.Pager.write_page p pg (Bytes.make Litedb.Pager.page_size 'b');
      Litedb.Pager.rollback p;
      Alcotest.(check char) "rolled back" 'a'
        (Bytes.get (Litedb.Pager.read_page p pg) 0))

let test_pager_persists_across_reopen () =
  let w = make_world ~pages:16384 () in
  in_proc ~uid:0 w (fun fs ->
      let p = okd (Litedb.Pager.open_ fs "/p.db") in
      Litedb.Pager.begin_txn p;
      let pg = Litedb.Pager.alloc_page p in
      Litedb.Pager.write_page p pg (Bytes.make Litedb.Pager.page_size 'z');
      okd (Litedb.Pager.commit p));
  in_proc ~uid:0 w (fun fs ->
      let p = okd (Litedb.Pager.open_ fs "/p.db") in
      Alcotest.(check char) "persisted" 'z' (Bytes.get (Litedb.Pager.read_page p 0) 0))

let test_pager_journal_recovery () =
  (* A crash after the journal is durable but before the commit point must
     roll the database back to the pre-transaction state. *)
  let w = make_world ~pages:16384 () in
  in_proc ~uid:0 w (fun fs ->
      let p = okd (Litedb.Pager.open_ fs "/j.db") in
      Litedb.Pager.begin_txn p;
      let pg = Litedb.Pager.alloc_page p in
      Litedb.Pager.write_page p pg (Bytes.make Litedb.Pager.page_size 'A');
      okd (Litedb.Pager.commit p);
      (* hand-craft the crash: journal with the before-image ('A'), then
         partially updated db page ('B'), no journal delete *)
      let jbuf = Buffer.create 64 in
      Buffer.add_int32_le jbuf (Int32.of_int pg);
      Buffer.add_bytes jbuf (Bytes.make Litedb.Pager.page_size 'A');
      okd (V.write_file fs "/j.db-journal" (Buffer.contents jbuf));
      let fd = okd (V.openf fs "/j.db" [ Treasury.Fs_types.O_WRONLY ] 0) in
      ignore
        (okd
           (V.pwrite fs fd
              ~off:(pg * Litedb.Pager.page_size)
              (String.make Litedb.Pager.page_size 'B')));
      okd (V.close fs fd));
  in_proc ~uid:0 w (fun fs ->
      (* reopen applies the journal *)
      let p = okd (Litedb.Pager.open_ fs "/j.db") in
      Alcotest.(check char) "before-image restored" 'A'
        (Bytes.get (Litedb.Pager.read_page p 0) 0);
      Alcotest.(check bool) "journal gone" false (V.exists fs "/j.db-journal"))

(* ---- btree -------------------------------------------------------------------- *)

let with_btree f =
  let w = make_world ~pages:32768 () in
  in_proc ~uid:0 w (fun fs ->
      let p = okd (Litedb.Pager.open_ fs "/bt.db") in
      Litedb.Pager.begin_txn p;
      let root = Litedb.Btree.create p in
      let r = f p root in
      okd (Litedb.Pager.commit p);
      r)

let test_btree_insert_lookup () =
  with_btree (fun p root ->
      let root = ref root in
      for i = 0 to 499 do
        root := Litedb.Btree.insert p ~root:!root (Printf.sprintf "%08d" i) (string_of_int i)
      done;
      for i = 0 to 499 do
        Alcotest.(check (option string))
          (Printf.sprintf "key %d" i)
          (Some (string_of_int i))
          (Litedb.Btree.lookup p ~root:!root (Printf.sprintf "%08d" i))
      done;
      Alcotest.(check (option string)) "missing" None
        (Litedb.Btree.lookup p ~root:!root "zz"))

let test_btree_update_in_place () =
  with_btree (fun p root ->
      let root = ref root in
      root := Litedb.Btree.insert p ~root:!root "k" "v1";
      root := Litedb.Btree.insert p ~root:!root "k" "v2";
      Alcotest.(check (option string)) "updated" (Some "v2")
        (Litedb.Btree.lookup p ~root:!root "k");
      Alcotest.(check int) "no duplicate" 1 (Litedb.Btree.cardinal p ~root:!root))

let test_btree_ordered_iteration () =
  with_btree (fun p root ->
      let root = ref root in
      let keys = [ "delta"; "alpha"; "mike"; "bravo"; "zulu" ] in
      List.iter (fun k -> root := Litedb.Btree.insert p ~root:!root k k) keys;
      let seen = ref [] in
      Litedb.Btree.iter_all p ~root:!root (fun k _ -> seen := k :: !seen);
      Alcotest.(check (list string)) "sorted"
        (List.sort compare keys)
        (List.rev !seen))

let test_btree_range_scan () =
  with_btree (fun p root ->
      let root = ref root in
      for i = 0 to 99 do
        root := Litedb.Btree.insert p ~root:!root (Printf.sprintf "%04d" i) ""
      done;
      let seen = ref 0 in
      Litedb.Btree.iter_from p ~root:!root ~start:"0050" (fun k _ ->
          incr seen;
          k < "0059");
      Alcotest.(check int) "range" 10 !seen)

let test_btree_delete () =
  with_btree (fun p root ->
      let root = ref root in
      for i = 0 to 99 do
        root := Litedb.Btree.insert p ~root:!root (Printf.sprintf "%04d" i) ""
      done;
      Alcotest.(check bool) "deleted" true (Litedb.Btree.delete p ~root:!root "0042");
      Alcotest.(check bool) "gone" true
        (Litedb.Btree.lookup p ~root:!root "0042" = None);
      Alcotest.(check bool) "again" false (Litedb.Btree.delete p ~root:!root "0042");
      Alcotest.(check int) "99 left" 99 (Litedb.Btree.cardinal p ~root:!root))

let qcheck_btree_model =
  QCheck.Test.make ~name:"btree behaves like a Map" ~count:15
    QCheck.(
      list_of_size (Gen.int_range 1 300)
        (pair bool (int_range 0 99)))
    (fun ops ->
      let w = make_world ~pages:32768 () in
      in_proc ~uid:0 w (fun fs ->
          let p = okd (Litedb.Pager.open_ fs "/bt.db") in
          Litedb.Pager.begin_txn p;
          let root = ref (Litedb.Btree.create p) in
          let module M = Map.Make (String) in
          let m = ref M.empty in
          List.iter
            (fun (ins, k) ->
              let key = Printf.sprintf "%04d" k in
              if ins then begin
                root := Litedb.Btree.insert p ~root:!root key key;
                m := M.add key key !m
              end
              else begin
                ignore (Litedb.Btree.delete p ~root:!root key);
                m := M.remove key !m
              end)
            ops;
          let bindings = ref [] in
          Litedb.Btree.iter_all p ~root:!root (fun k v ->
              bindings := (k, v) :: !bindings);
          okd (Litedb.Pager.commit p);
          List.rev !bindings = M.bindings !m))

(* ---- db (tables + indexes) ----------------------------------------------------- *)

let with_db f =
  let w = make_world ~pages:65536 () in
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Litedb.Db.open_ fs "/rel.db") in
      f fs db)

let test_table_crud () =
  with_db (fun _ db ->
      okd (Litedb.Db.create_table db "people");
      let rid =
        okd
          (Litedb.Db.txn db (fun () ->
               Ok (Litedb.Db.insert db "people" [ R.Str "ada"; R.Int 36 ])))
      in
      (match Litedb.Db.get db "people" rid with
      | Some [ R.Str "ada"; R.Int 36 ] -> ()
      | _ -> Alcotest.fail "row mismatch");
      okd
        (Litedb.Db.txn db (fun () ->
             Litedb.Db.update db "people" rid [ R.Str "ada"; R.Int 37 ];
             Ok ()));
      (match Litedb.Db.get db "people" rid with
      | Some [ R.Str "ada"; R.Int 37 ] -> ()
      | _ -> Alcotest.fail "update mismatch");
      okd
        (Litedb.Db.txn db (fun () ->
             ignore (Litedb.Db.delete db "people" rid);
             Ok ()));
      Alcotest.(check bool) "deleted" true (Litedb.Db.get db "people" rid = None))

let test_unique_index () =
  with_db (fun _ db ->
      okd (Litedb.Db.create_table db "t");
      okd (Litedb.Db.create_index db "t_pk" ~table:"t" ~cols:[ 0 ] ~unique:true);
      okd
        (Litedb.Db.txn db (fun () ->
             for i = 1 to 50 do
               ignore (Litedb.Db.insert db "t" [ R.Int i; R.Str (string_of_int i) ])
             done;
             Ok ()));
      match Litedb.Db.index_find db "t_pk" [ R.Int 37 ] with
      | Some rid -> (
          match Litedb.Db.get db "t" rid with
          | Some [ R.Int 37; R.Str "37" ] -> ()
          | _ -> Alcotest.fail "index led to wrong row")
      | None -> Alcotest.fail "index miss")

let test_index_maintained_on_update_delete () =
  with_db (fun _ db ->
      okd (Litedb.Db.create_table db "t");
      okd (Litedb.Db.create_index db "t_pk" ~table:"t" ~cols:[ 0 ] ~unique:true);
      let rid =
        okd
          (Litedb.Db.txn db (fun () -> Ok (Litedb.Db.insert db "t" [ R.Int 1; R.Str "x" ])))
      in
      okd
        (Litedb.Db.txn db (fun () ->
             Litedb.Db.update db "t" rid [ R.Int 2; R.Str "x" ];
             Ok ()));
      Alcotest.(check bool) "old key gone" true
        (Litedb.Db.index_find db "t_pk" [ R.Int 1 ] = None);
      Alcotest.(check (option int)) "new key" (Some rid)
        (Litedb.Db.index_find db "t_pk" [ R.Int 2 ]);
      okd
        (Litedb.Db.txn db (fun () ->
             ignore (Litedb.Db.delete db "t" rid);
             Ok ()));
      Alcotest.(check bool) "index cleared" true
        (Litedb.Db.index_find db "t_pk" [ R.Int 2 ] = None))

let test_db_reopen () =
  let w = make_world ~pages:65536 () in
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Litedb.Db.open_ fs "/rel.db") in
      okd (Litedb.Db.create_table db "t");
      okd (Litedb.Db.create_index db "t_pk" ~table:"t" ~cols:[ 0 ] ~unique:true);
      okd
        (Litedb.Db.txn db (fun () ->
             for i = 1 to 200 do
               ignore (Litedb.Db.insert db "t" [ R.Int i ])
             done;
             Ok ())));
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Litedb.Db.open_ fs "/rel.db") in
      match Litedb.Db.index_find db "t_pk" [ R.Int 123 ] with
      | Some rid -> (
          match Litedb.Db.get db "t" rid with
          | Some [ R.Int 123 ] -> ()
          | _ -> Alcotest.fail "wrong row after reopen")
      | None -> Alcotest.fail "index lost after reopen")

let test_txn_rollback_on_error () =
  with_db (fun _ db ->
      okd (Litedb.Db.create_table db "t");
      (match
         Litedb.Db.txn db (fun () ->
             ignore (Litedb.Db.insert db "t" [ R.Int 1 ]);
             Error Treasury.Errno.EINVAL)
       with
      | Error Treasury.Errno.EINVAL -> ()
      | _ -> Alcotest.fail "expected propagated error");
      let count = ref 0 in
      Litedb.Db.scan db "t" (fun _ _ -> incr count);
      Alcotest.(check int) "rolled back" 0 !count)

(* ---- TPC-C ----------------------------------------------------------------------- *)

let with_tpcc f =
  let w = make_world ~pages:131072 () in
  in_proc ~uid:0 w (fun fs ->
      let t = okd (Litedb.Tpcc.create fs "/tpcc.db") in
      f t)

let test_tpcc_new_order () =
  with_tpcc (fun t ->
      for _ = 1 to 10 do
        okd (Litedb.Tpcc.new_order t)
      done;
      Alcotest.(check bool) "consistent" true (Litedb.Tpcc.consistency_check t))

let test_tpcc_all_kinds () =
  with_tpcc (fun t ->
      List.iter
        (fun k ->
          match Litedb.Tpcc.run_txn t k with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s failed: %s" (Litedb.Tpcc.kind_name k)
                (Treasury.Errno.to_string e))
        [ Litedb.Tpcc.NEW; Litedb.Tpcc.PAY; Litedb.Tpcc.OS; Litedb.Tpcc.DLY; Litedb.Tpcc.SL ])

let test_tpcc_mix_run () =
  with_tpcc (fun t ->
      let tps = Litedb.Tpcc.run t ~n:50 () in
      Alcotest.(check bool) "positive throughput" true (tps > 0.0);
      Alcotest.(check int) "all committed" 50 (Litedb.Tpcc.committed t);
      Alcotest.(check int) "no aborts" 0 (Litedb.Tpcc.aborted t);
      Alcotest.(check bool) "consistent after mix" true
        (Litedb.Tpcc.consistency_check t))

let () =
  Alcotest.run "litedb"
    [
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "index key order" `Quick test_index_key_order;
        ] );
      ( "pager",
        [
          Alcotest.test_case "txn commit/rollback" `Quick
            test_pager_txn_commit_rollback;
          Alcotest.test_case "persists" `Quick test_pager_persists_across_reopen;
          Alcotest.test_case "journal recovery" `Quick test_pager_journal_recovery;
        ] );
      ( "btree",
        [
          Alcotest.test_case "insert/lookup (splits)" `Quick test_btree_insert_lookup;
          Alcotest.test_case "update in place" `Quick test_btree_update_in_place;
          Alcotest.test_case "ordered iteration" `Quick test_btree_ordered_iteration;
          Alcotest.test_case "range scan" `Quick test_btree_range_scan;
          Alcotest.test_case "delete" `Quick test_btree_delete;
          QCheck_alcotest.to_alcotest qcheck_btree_model;
        ] );
      ( "db",
        [
          Alcotest.test_case "table crud" `Quick test_table_crud;
          Alcotest.test_case "unique index" `Quick test_unique_index;
          Alcotest.test_case "index maintenance" `Quick
            test_index_maintained_on_update_delete;
          Alcotest.test_case "reopen" `Quick test_db_reopen;
          Alcotest.test_case "rollback" `Quick test_txn_rollback_on_error;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "new order" `Quick test_tpcc_new_order;
          Alcotest.test_case "all kinds" `Quick test_tpcc_all_kinds;
          Alcotest.test_case "mixed run" `Slow test_tpcc_mix_run;
        ] );
    ]
