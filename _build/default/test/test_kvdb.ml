(* Tests for the LSM key-value store (the LevelDB substrate of Table 7). *)

open Testkit
module V = Treasury.Vfs

let okd = function
  | Ok v -> v
  | Error e -> Alcotest.failf "kvdb error: %s" (Treasury.Errno.to_string e)

let with_db f =
  let w = make_world ~pages:32768 () in
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Kvdb.Db.open_ fs "/db") in
      f fs db)

let test_put_get () =
  with_db (fun _ db ->
      okd (Kvdb.Db.put db ~key:"alpha" ~value:"1");
      okd (Kvdb.Db.put db ~key:"beta" ~value:"2");
      Alcotest.(check (option string)) "alpha" (Some "1") (Kvdb.Db.get db ~key:"alpha");
      Alcotest.(check (option string)) "beta" (Some "2") (Kvdb.Db.get db ~key:"beta");
      Alcotest.(check (option string)) "missing" None (Kvdb.Db.get db ~key:"gamma"))

let test_overwrite () =
  with_db (fun _ db ->
      okd (Kvdb.Db.put db ~key:"k" ~value:"old");
      okd (Kvdb.Db.put db ~key:"k" ~value:"new");
      Alcotest.(check (option string)) "latest wins" (Some "new")
        (Kvdb.Db.get db ~key:"k"))

let test_delete () =
  with_db (fun _ db ->
      okd (Kvdb.Db.put db ~key:"k" ~value:"v");
      okd (Kvdb.Db.delete db ~key:"k");
      Alcotest.(check (option string)) "deleted" None (Kvdb.Db.get db ~key:"k"))

let test_reopen_recovers_from_wal () =
  let w = make_world ~pages:32768 () in
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Kvdb.Db.open_ fs "/db") in
      okd (Kvdb.Db.put db ~key:"persist" ~value:"me");
      okd (Kvdb.Db.put db ~key:"and" ~value:"me too")
      (* no close: simulate a crash before any flush *));
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Kvdb.Db.open_ fs "/db") in
      Alcotest.(check (option string)) "replayed 1" (Some "me")
        (Kvdb.Db.get db ~key:"persist");
      Alcotest.(check (option string)) "replayed 2" (Some "me too")
        (Kvdb.Db.get db ~key:"and"))

let test_reopen_after_close () =
  let w = make_world ~pages:32768 () in
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Kvdb.Db.open_ fs "/db") in
      for i = 0 to 99 do
        okd (Kvdb.Db.put db ~key:(Kvdb.Db_bench.key_of i) ~value:(string_of_int i))
      done;
      okd (Kvdb.Db.close db));
  in_proc ~uid:0 w (fun fs ->
      let db = okd (Kvdb.Db.open_ fs "/db") in
      for i = 0 to 99 do
        Alcotest.(check (option string))
          (Printf.sprintf "key %d" i)
          (Some (string_of_int i))
          (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of i))
      done)

let test_flush_and_read_from_sstable () =
  with_db (fun _ db ->
      (* large values force a memtable flush (budget 256 KB) *)
      let big = String.make 4096 'v' in
      for i = 0 to 99 do
        okd (Kvdb.Db.put db ~key:(Kvdb.Db_bench.key_of i) ~value:big)
      done;
      let l0, _ = Kvdb.Db.level_sizes db in
      Alcotest.(check bool) "flushed to L0" true (l0 >= 1);
      (* reads hit the tables, not just the memtable *)
      Alcotest.(check (option string)) "first" (Some big)
        (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of 0));
      Alcotest.(check (option string)) "last" (Some big)
        (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of 99)))

let test_compaction_preserves_data () =
  with_db (fun _ db ->
      let big = String.make 2048 'c' in
      for i = 0 to 699 do
        okd (Kvdb.Db.put db ~key:(Kvdb.Db_bench.key_of i) ~value:big)
      done;
      Alcotest.(check bool) "compacted at least once" true
        (Kvdb.Db.compaction_count db >= 1);
      let l0, l1 = Kvdb.Db.level_sizes db in
      Alcotest.(check bool) "l1 populated" true (l1 >= 1);
      ignore l0;
      (* spot check *)
      for i = 0 to 699 do
        if i mod 53 = 0 then
          Alcotest.(check (option string))
            (Printf.sprintf "after compaction %d" i)
            (Some big)
            (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of i))
      done)

let test_tombstones_survive_flush () =
  with_db (fun _ db ->
      let big = String.make 4096 'x' in
      for i = 0 to 79 do
        okd (Kvdb.Db.put db ~key:(Kvdb.Db_bench.key_of i) ~value:big)
      done;
      okd (Kvdb.Db.delete db ~key:(Kvdb.Db_bench.key_of 5));
      (* force another flush so the tombstone lands in a newer L0 table *)
      for i = 100 to 179 do
        okd (Kvdb.Db.put db ~key:(Kvdb.Db_bench.key_of i) ~value:big)
      done;
      Alcotest.(check (option string)) "tombstone wins" None
        (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of 5));
      Alcotest.(check (option string)) "neighbour intact" (Some big)
        (Kvdb.Db.get db ~key:(Kvdb.Db_bench.key_of 6)))

let test_fold_all_ordered () =
  with_db (fun _ db ->
      List.iter
        (fun k -> okd (Kvdb.Db.put db ~key:k ~value:k))
        [ "delta"; "alpha"; "charlie"; "bravo" ];
      okd (Kvdb.Db.delete db ~key:"charlie");
      let keys = List.rev (Kvdb.Db.fold_all db (fun acc k _ -> k :: acc) []) in
      Alcotest.(check (list string)) "sorted, tombstone hidden"
        [ "alpha"; "bravo"; "delta" ]
        keys)

let test_sstable_roundtrip () =
  let w = make_world ~pages:16384 () in
  in_proc ~uid:0 w (fun fs ->
      let entries =
        List.init 100 (fun i ->
            {
              Kvdb.Sstable.key = Kvdb.Db_bench.key_of i;
              value = (if i mod 10 = 3 then None else Some (Printf.sprintf "v%d" i));
            })
      in
      okd (Kvdb.Sstable.write fs "/t.sst" entries);
      let tbl = okd (Kvdb.Sstable.open_ fs "/t.sst") in
      Alcotest.(check int) "count" 100 (Kvdb.Sstable.count tbl);
      Alcotest.(check (option (option string))) "hit" (Some (Some "v42"))
        (Kvdb.Sstable.get tbl (Kvdb.Db_bench.key_of 42));
      Alcotest.(check (option (option string))) "tombstone" (Some None)
        (Kvdb.Sstable.get tbl (Kvdb.Db_bench.key_of 13));
      Alcotest.(check (option (option string))) "miss" None
        (Kvdb.Sstable.get tbl "zzz-not-there");
      let lo, hi = Kvdb.Sstable.key_range tbl in
      Alcotest.(check string) "smallest" (Kvdb.Db_bench.key_of 0) lo;
      Alcotest.(check string) "largest" (Kvdb.Db_bench.key_of 99) hi;
      Alcotest.(check int) "iter count" 100
        (List.length (Kvdb.Sstable.entries tbl)))

let qcheck_db_matches_model =
  QCheck.Test.make ~name:"kvdb behaves like a Hashtbl" ~count:15
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (triple bool (int_range 0 50) (string_of_size (Gen.int_range 0 600))))
    (fun ops ->
      let w = make_world ~pages:32768 () in
      in_proc ~uid:0 w (fun fs ->
          let db = okd (Kvdb.Db.open_ fs "/db") in
          let model = Hashtbl.create 64 in
          List.iter
            (fun (put, k, v) ->
              let key = Printf.sprintf "key%02d" k in
              if put then begin
                okd (Kvdb.Db.put db ~key ~value:v);
                Hashtbl.replace model key v
              end
              else begin
                okd (Kvdb.Db.delete db ~key);
                Hashtbl.remove model key
              end)
            ops;
          List.for_all
            (fun k ->
              let key = Printf.sprintf "key%02d" k in
              Kvdb.Db.get db ~key = Hashtbl.find_opt model key)
            (List.init 51 Fun.id)))

let test_bench_smoke () =
  let w = make_world ~pages:65536 ~perf:Nvm.Perf.optane () in
  in_proc ~uid:0 w (fun fs ->
      let lat = Kvdb.Db_bench.run fs ~n:200 Kvdb.Db_bench.Write_seq in
      Alcotest.(check bool) "positive latency" true (lat > 0.0);
      Alcotest.(check bool) "sane latency (< 1 ms)" true (lat < 1000.0))

let () =
  Alcotest.run "kvdb"
    [
      ( "basics",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "fold_all" `Quick test_fold_all_ordered;
        ] );
      ( "durability",
        [
          Alcotest.test_case "wal replay" `Quick test_reopen_recovers_from_wal;
          Alcotest.test_case "reopen after close" `Quick test_reopen_after_close;
        ] );
      ( "lsm",
        [
          Alcotest.test_case "flush to sstable" `Quick
            test_flush_and_read_from_sstable;
          Alcotest.test_case "compaction" `Slow test_compaction_preserves_data;
          Alcotest.test_case "tombstones" `Quick test_tombstones_survive_flush;
          Alcotest.test_case "sstable roundtrip" `Quick test_sstable_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_db_matches_model;
        ] );
      ("bench", [ Alcotest.test_case "db_bench smoke" `Quick test_bench_smoke ]);
    ]
