(* Tests for the baseline file systems (Ext4-DAX, PMFS, NOVA, Strata):
   functional correctness behind the shared Vfs interface, parity with each
   other, and the Strata-specific log/digest/lease behaviour. *)

module V = Treasury.Vfs
module Ft = Treasury.Fs_types
module E = Treasury.Errno

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" (E.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected error %s" (E.to_string expected)
  | Error e ->
      Alcotest.(check string) "errno" (E.to_string expected) (E.to_string e)

let free = Nvm.Perf.free

let all_fses () =
  [
    Baselines.Ext4_dax.fs ~pages:8192 ~perf:free ();
    Baselines.Pmfs.fs ~pages:8192 ~perf:free ();
    Baselines.Nova.fs ~pages:8192 ~perf:free ();
    Baselines.Strata.fs ~pages:8192 ~perf:free ();
  ]

let for_each_fs f =
  List.iter
    (fun fs ->
      Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
          f (V.name fs) fs))
    (all_fses ())

let test_roundtrip_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.write_file fs "/f" "hello");
      Alcotest.(check string) (label ^ " roundtrip") "hello"
        (ok_or_fail (V.read_file fs "/f")))

let test_append_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.append_file fs "/log" "aa");
      ok_or_fail (V.append_file fs "/log" "bb");
      Alcotest.(check string) (label ^ " append") "aabb"
        (ok_or_fail (V.read_file fs "/log")))

let test_mkdir_readdir_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.mkdir fs "/d" 0o755);
      ok_or_fail (V.write_file fs "/d/x" "1");
      ok_or_fail (V.write_file fs "/d/y" "2");
      let names =
        ok_or_fail (V.readdir fs "/d")
        |> List.map (fun d -> d.Ft.d_name)
        |> List.sort compare
      in
      Alcotest.(check (list string)) (label ^ " readdir") [ "x"; "y" ] names)

let test_unlink_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.write_file fs "/dead" "x");
      ok_or_fail (V.unlink fs "/dead");
      ignore label;
      expect_err E.ENOENT (V.stat fs "/dead"))

let test_overwrite_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.write_file fs "/o" (String.make 8192 'a'));
      let fd = ok_or_fail (V.openf fs "/o" [ Ft.O_WRONLY ] 0) in
      ignore (ok_or_fail (V.pwrite fs fd ~off:4096 (String.make 4096 'b')));
      ok_or_fail (V.close fs fd);
      let s = ok_or_fail (V.read_file fs "/o") in
      Alcotest.(check string)
        (label ^ " overwrite")
        (String.make 4096 'a' ^ String.make 4096 'b')
        s)

let test_large_file_all () =
  (* exceeds the 12 direct blocks: exercises indirect mapping *)
  for_each_fs (fun label fs ->
      let data = String.init (64 * 1024) (fun i -> Char.chr (i mod 256)) in
      ok_or_fail (V.write_file fs "/big" data);
      Alcotest.(check bool) (label ^ " big file") true
        (ok_or_fail (V.read_file fs "/big") = data))

let test_rename_all () =
  for_each_fs (fun label fs ->
      ok_or_fail (V.write_file fs "/a" "data");
      ok_or_fail (V.rename fs "/a" "/b");
      Alcotest.(check string) (label ^ " rename") "data"
        (ok_or_fail (V.read_file fs "/b"));
      expect_err E.ENOENT (V.stat fs "/a"))

let test_permission_enforcement_engine () =
  (* kernel FSes check per-file permissions on open *)
  let fs = Baselines.Pmfs.fs ~pages:4096 ~perf:free () in
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:100 ~gid:100 ()) (fun () ->
      ok_or_fail (V.write_file fs "/p" ~mode:0o600 "secret"));
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:200 ~gid:200 ()) (fun () ->
      expect_err E.EACCES (V.openf fs "/p" [ Ft.O_RDONLY ] 0))

let test_symlink_engine () =
  let fs = Baselines.Nova.fs ~pages:4096 ~perf:free () in
  Sim.run_thread (fun () ->
      ok_or_fail (V.mkdir fs "/real" 0o755);
      ok_or_fail (V.write_file fs "/real/f" "via link");
      ok_or_fail (V.symlink fs ~target:"/real" ~link:"/ln");
      Alcotest.(check string) "symlink" "via link"
        (ok_or_fail (V.read_file fs "/ln/f")))

let test_truncate_engine () =
  let fs = Baselines.Ext4_dax.fs ~pages:4096 ~perf:free () in
  Sim.run_thread (fun () ->
      ok_or_fail (V.write_file fs "/t" (String.make 10000 'z'));
      ok_or_fail (V.truncate fs "/t" 5);
      Alcotest.(check string) "truncated" "zzzzz" (ok_or_fail (V.read_file fs "/t")))

(* ---- cost-structure sanity: the knobs that differentiate the baselines *)

let measure f = Sim.run_thread (fun () -> let t0 = Sim.now () in f (); Sim.now () - t0)

let test_kernel_fs_pays_syscalls () =
  let fs = Baselines.Pmfs.fs ~pages:4096 ~perf:Nvm.Perf.optane () in
  let t =
    measure (fun () ->
        ignore (V.stat fs "/") )
  in
  Alcotest.(check bool) "stat costs at least a syscall" true
    (t >= Treasury.Gate.enter_cost + Treasury.Gate.exit_cost)

let test_pmfs_clwb_slower_than_nocache () =
  (* Figure 8: default PMFS (store+clwb) is much slower than PMFS-nocache
     (non-temporal stores) for 4 KB overwrites. *)
  let run nocache =
    let fs = Baselines.Pmfs.fs ~nocache ~pages:4096 ~perf:Nvm.Perf.optane () in
    measure (fun () ->
        ok_or_fail (V.write_file fs "/w" (String.make 4096 'x'));
        let fd = ok_or_fail (V.openf fs "/w" [ Ft.O_WRONLY ] 0) in
        for _ = 1 to 20 do
          ignore (ok_or_fail (V.pwrite fs fd ~off:0 (String.make 4096 'y')))
        done;
        ok_or_fail (V.close fs fd))
  in
  let default = run false and nocache = run true in
  Alcotest.(check bool)
    (Printf.sprintf "clwb (%d) slower than nt (%d)" default nocache)
    true
    (default > nocache)

let test_nova_cow_slower_than_pmfs_inplace () =
  (* NOVA's copy-on-write + index update loses to PMFS's in-place writes on
     4 KB overwrites (Table 7 reasoning). *)
  let overwrites fs =
    measure (fun () ->
        ok_or_fail (V.write_file fs "/w" (String.make 4096 'x'));
        let fd = ok_or_fail (V.openf fs "/w" [ Ft.O_WRONLY ] 0) in
        for _ = 1 to 20 do
          ignore (ok_or_fail (V.pwrite fs fd ~off:0 (String.make 4096 'y')))
        done;
        ok_or_fail (V.close fs fd))
  in
  let nova = overwrites (Baselines.Nova.fs ~pages:8192 ~perf:Nvm.Perf.optane ()) in
  let pmfs =
    overwrites (Baselines.Pmfs.fs ~nocache:true ~pages:8192 ~perf:Nvm.Perf.optane ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "nova (%d) slower than pmfs-nocache (%d)" nova pmfs)
    true (nova > pmfs)

(* ---- Strata specifics -------------------------------------------------- *)

let test_strata_fast_append_no_syscall () =
  (* A Strata append must be cheaper than a PMFS append (no kernel
     crossing). *)
  let append_time fs =
    measure (fun () ->
        ok_or_fail (V.write_file fs "/f" "");
        for _ = 1 to 10 do
          ok_or_fail (V.append_file fs "/f" (String.make 4096 'x'))
        done)
  in
  let strata = append_time (Baselines.Strata.fs ~pages:8192 ~perf:Nvm.Perf.optane ()) in
  let ext4 = append_time (Baselines.Ext4_dax.fs ~pages:8192 ~perf:Nvm.Perf.optane ()) in
  Alcotest.(check bool)
    (Printf.sprintf "strata (%d) beats ext4 (%d)" strata ext4)
    true (strata < ext4)

let test_strata_read_sees_pending_writes () =
  let t = Baselines.Strata.create ~pages:8192 ~perf:free () in
  let fs = Treasury.Vfs.Fs ((module struct
    type nonrec t = Baselines.Strata.t

    let name = Baselines.Strata.name
    let openf = Baselines.Strata.openf
    let mkdir = Baselines.Strata.mkdir
    let rmdir = Baselines.Strata.rmdir
    let unlink = Baselines.Strata.unlink
    let rename = Baselines.Strata.rename
    let stat = Baselines.Strata.stat
    let lstat = Baselines.Strata.lstat
    let readdir = Baselines.Strata.readdir
    let chmod = Baselines.Strata.chmod
    let chown = Baselines.Strata.chown
    let symlink = Baselines.Strata.symlink
    let readlink = Baselines.Strata.readlink
    let truncate = Baselines.Strata.truncate
    let close = Baselines.Strata.close
    let read = Baselines.Strata.read
    let pread = Baselines.Strata.pread
    let write = Baselines.Strata.write
    let pwrite = Baselines.Strata.pwrite
    let lseek = Baselines.Strata.lseek
    let fsync = Baselines.Strata.fsync
    let fstat = Baselines.Strata.fstat
    let ftruncate = Baselines.Strata.ftruncate
  end), t)
  in
  Sim.run_thread (fun () ->
      (* data written but not yet digested must be readable *)
      ok_or_fail (V.write_file fs "/pend" "undigested data");
      Alcotest.(check int) "no digest yet" 0 (Baselines.Strata.digest_count t);
      Alcotest.(check string) "overlay read" "undigested data"
        (ok_or_fail (V.read_file fs "/pend")))

let test_strata_sharing_forces_digest () =
  (* Table 2: when a second process touches the same file, the holder's log
     must be digested (lease revocation), making the op far slower. *)
  let fs = Baselines.Strata.fs ~pages:16384 ~perf:Nvm.Perf.optane () in
  let t =
    match fs with Treasury.Vfs.Fs (_, _) -> fs
  in
  ignore t;
  let p1 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let p2 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let world = Sim.create () in
  let p1_solo = ref 0 and p2_shared = ref 0 in
  Sim.spawn world ~proc:p1 ~name:"p1" (fun () ->
      ok_or_fail (V.write_file fs "/shared" "");
      let t0 = Sim.now () in
      ok_or_fail (V.append_file fs "/shared" (String.make 4096 'x'));
      p1_solo := Sim.now () - t0);
  Sim.spawn world ~proc:p2 ~at:10_000_000 ~name:"p2" (fun () ->
      let t0 = Sim.now () in
      ok_or_fail (V.append_file fs "/shared" (String.make 4096 'y'));
      p2_shared := Sim.now () - t0);
  Sim.run world;
  Alcotest.(check bool)
    (Printf.sprintf "shared append (%d) ≫ solo append (%d)" !p2_shared !p1_solo)
    true
    (!p2_shared > 3 * !p1_solo)

let test_strata_crossing_preserves_data () =
  (* After the lease ping-pong, both processes' appends are present. *)
  let fs = Baselines.Strata.fs ~pages:16384 ~perf:free () in
  let p1 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let p2 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let world = Sim.create () in
  Sim.spawn world ~proc:p1 ~name:"p1" (fun () ->
      ok_or_fail (V.write_file fs "/both" "");
      ok_or_fail (V.append_file fs "/both" "AAAA"));
  Sim.spawn world ~proc:p2 ~at:1_000_000 ~name:"p2" (fun () ->
      ok_or_fail (V.append_file fs "/both" "BBBB"));
  Sim.run world;
  Sim.run_thread ~proc:p1 (fun () ->
      Alcotest.(check string) "both appends visible" "AAAABBBB"
        (ok_or_fail (V.read_file fs "/both")))

let () =
  Alcotest.run "baselines"
    [
      ( "functional-parity",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_all;
          Alcotest.test_case "append" `Quick test_append_all;
          Alcotest.test_case "mkdir/readdir" `Quick test_mkdir_readdir_all;
          Alcotest.test_case "unlink" `Quick test_unlink_all;
          Alcotest.test_case "overwrite" `Quick test_overwrite_all;
          Alcotest.test_case "large file" `Quick test_large_file_all;
          Alcotest.test_case "rename" `Quick test_rename_all;
        ] );
      ( "engine-features",
        [
          Alcotest.test_case "permissions" `Quick test_permission_enforcement_engine;
          Alcotest.test_case "symlink" `Quick test_symlink_engine;
          Alcotest.test_case "truncate" `Quick test_truncate_engine;
        ] );
      ( "cost-structure",
        [
          Alcotest.test_case "syscall charged" `Quick test_kernel_fs_pays_syscalls;
          Alcotest.test_case "pmfs clwb vs nocache" `Quick
            test_pmfs_clwb_slower_than_nocache;
          Alcotest.test_case "nova cow vs pmfs" `Quick
            test_nova_cow_slower_than_pmfs_inplace;
        ] );
      ( "strata",
        [
          Alcotest.test_case "fast append" `Quick test_strata_fast_append_no_syscall;
          Alcotest.test_case "overlay reads" `Quick test_strata_read_sees_pending_writes;
          Alcotest.test_case "sharing forces digest" `Quick
            test_strata_sharing_forces_digest;
          Alcotest.test_case "crossing preserves data" `Quick
            test_strata_crossing_preserves_data;
        ] );
    ]
