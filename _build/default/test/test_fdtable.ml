(* Tests for the user-space FD mapping table (paper §4.2). *)

module F = Treasury.Fd_table

let ufs h = F.Ufs { ctype = 1; handle = h }

let test_lowest_available () =
  let t = F.create () in
  Alcotest.(check int) "first" 3 (F.alloc t (ufs 100));
  Alcotest.(check int) "second" 4 (F.alloc t (ufs 101));
  Alcotest.(check int) "third" 5 (F.alloc t (ufs 102));
  ignore (F.close t 4);
  (* dup-critical property: the hole is refilled first *)
  Alcotest.(check int) "hole reused" 4 (F.alloc t (ufs 103))

let test_lookup () =
  let t = F.create () in
  let fd = F.alloc t (ufs 7) in
  (match F.lookup t fd with
  | Ok ofd -> (
      match ofd.F.target with
      | F.Ufs { ctype; handle } ->
          Alcotest.(check int) "ctype" 1 ctype;
          Alcotest.(check int) "handle" 7 handle
      | _ -> Alcotest.fail "wrong target")
  | Error _ -> Alcotest.fail "lookup failed");
  match F.lookup t 99 with
  | Error Treasury.Errno.EBADF -> ()
  | _ -> Alcotest.fail "expected EBADF"

let test_dup_shares_offset () =
  let t = F.create () in
  let fd = F.alloc t (ufs 7) in
  let fd2 =
    match F.dup t fd with Ok f -> f | Error _ -> Alcotest.fail "dup"
  in
  Alcotest.(check int) "lowest" 4 fd2;
  (match F.lookup t fd with
  | Ok ofd -> ofd.F.offset <- 1234
  | Error _ -> Alcotest.fail "lookup");
  (match F.lookup t fd2 with
  | Ok ofd -> Alcotest.(check int) "shared offset" 1234 ofd.F.offset
  | Error _ -> Alcotest.fail "lookup dup");
  (* Closing one side must not close the file. *)
  (match F.close t fd with
  | Ok None -> ()
  | _ -> Alcotest.fail "refcount should keep it open");
  match F.close t fd2 with
  | Ok (Some (F.Ufs { handle = 7; _ })) -> ()
  | _ -> Alcotest.fail "last close returns target"

let test_dup2 () =
  let t = F.create () in
  let fd = F.alloc t (ufs 1) in
  let other = F.alloc t (ufs 2) in
  (match F.dup2 t fd other with
  | Ok (nfd, Some (F.Ufs { handle = 2; _ })) ->
      Alcotest.(check int) "targeted" other nfd
  | _ -> Alcotest.fail "dup2 should displace");
  (* both fds now share the description of handle 1 *)
  (match F.lookup t other with
  | Ok ofd -> (
      match ofd.F.target with
      | F.Ufs { handle = 1; _ } -> ()
      | _ -> Alcotest.fail "wrong target after dup2")
  | Error _ -> Alcotest.fail "lookup");
  (* dup2 to itself is a no-op *)
  match F.dup2 t fd fd with
  | Ok (_, None) -> ()
  | _ -> Alcotest.fail "self dup2"

let test_dup2_to_fresh_slot () =
  let t = F.create () in
  let fd = F.alloc t (ufs 1) in
  match F.dup2 t fd 17 with
  | Ok (17, None) -> (
      match F.lookup t 17 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "slot 17 should exist")
  | _ -> Alcotest.fail "dup2 to fresh"

let test_open_count_iter () =
  let t = F.create () in
  ignore (F.alloc t (ufs 1));
  ignore (F.alloc t (F.Kernel 5));
  Alcotest.(check int) "count" 2 (F.open_count t);
  let seen = ref 0 in
  F.iter t (fun _ _ -> incr seen);
  Alcotest.(check int) "iter" 2 !seen

let test_serialize_roundtrip () =
  let t = F.create () in
  let a = F.alloc t ~append:true (ufs 7) in
  let b = F.alloc t (F.Kernel 42) in
  (match F.lookup t a with Ok o -> o.F.offset <- 100 | Error _ -> ());
  let c = match F.dup t a with Ok c -> c | Error _ -> Alcotest.fail "dup" in
  let s = F.serialize t in
  let t' = F.deserialize s in
  Alcotest.(check int) "count preserved" 3 (F.open_count t');
  (match F.lookup t' a with
  | Ok o ->
      Alcotest.(check int) "offset" 100 o.F.offset;
      Alcotest.(check bool) "append" true o.F.append;
      (match o.F.target with
      | F.Ufs { handle = 7; ctype = 1 } -> ()
      | _ -> Alcotest.fail "target a")
  | Error _ -> Alcotest.fail "fd a");
  (match F.lookup t' b with
  | Ok o -> (
      match o.F.target with
      | F.Kernel 42 -> ()
      | _ -> Alcotest.fail "target b")
  | Error _ -> Alcotest.fail "fd b");
  (* dup-sharing survives exec: offset updates still propagate *)
  (match F.lookup t' a with Ok o -> o.F.offset <- 777 | Error _ -> ());
  match F.lookup t' c with
  | Ok o -> Alcotest.(check int) "shared after exec" 777 o.F.offset
  | Error _ -> Alcotest.fail "fd c"

let test_serialize_empty () =
  let t = F.create () in
  let t' = F.deserialize (F.serialize t) in
  Alcotest.(check int) "empty" 0 (F.open_count t')

let qcheck_alloc_always_lowest =
  QCheck.Test.make ~name:"alloc always returns the lowest free fd" ~count:100
    QCheck.(list (option (int_range 3 20)))
    (fun ops ->
      (* Some op = close that fd (if open); None = alloc. *)
      let t = F.create () in
      let open_fds = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | None ->
              let fd = F.alloc t (ufs 0) in
              (* check it is the smallest non-open fd >= 3 *)
              let rec smallest i =
                if List.mem i !open_fds then smallest (i + 1) else i
              in
              if fd <> smallest 3 then ok := false;
              open_fds := fd :: !open_fds
          | Some fd ->
              if List.mem fd !open_fds then begin
                ignore (F.close t fd);
                open_fds := List.filter (( <> ) fd) !open_fds
              end)
        ops;
      !ok)

let () =
  Alcotest.run "fd_table"
    [
      ( "table",
        [
          Alcotest.test_case "lowest available" `Quick test_lowest_available;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
          Alcotest.test_case "dup2" `Quick test_dup2;
          Alcotest.test_case "dup2 fresh slot" `Quick test_dup2_to_fresh_slot;
          Alcotest.test_case "open_count/iter" `Quick test_open_count_iter;
          QCheck_alcotest.to_alcotest qcheck_alloc_always_lowest;
        ] );
      ( "exec",
        [
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "serialize empty" `Quick test_serialize_empty;
        ] );
    ]
