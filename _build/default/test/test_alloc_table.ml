(* Tests for KernFS's persistent allocation table. *)

module A = Treasury.Alloc_table
module D = Nvm.Device

let npages = 256

let mk () =
  (* The table covers [npages] pages and itself lives at byte 0 of a device
     large enough to hold it. *)
  let dev = D.create ~perf:Nvm.Perf.free ~size:(npages * Nvm.page_size) () in
  (dev, A.format dev ~base:0 ~npages)

let runs = Alcotest.(list (pair int int))

let test_format_all_free () =
  let _, t = mk () in
  A.verify t;
  Alcotest.(check int) "all free" npages (A.free_pages t);
  Alcotest.(check int) "owner 0" 0 (A.owner_of t ~page:13)

let test_alloc_contiguous () =
  let _, t = mk () in
  (match A.alloc t ~cid:7 ~n:10 with
  | Some granted -> Alcotest.check runs "one run" [ (0, 10) ] granted
  | None -> Alcotest.fail "alloc failed");
  A.verify t;
  Alcotest.(check int) "free count" (npages - 10) (A.free_pages t);
  Alcotest.(check int) "owner" 7 (A.owner_of t ~page:5);
  Alcotest.(check int) "neighbour free" 0 (A.owner_of t ~page:10)

let test_alloc_first_fit () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:1 ~n:10);
  ignore (A.alloc t ~cid:2 ~n:10);
  A.free_run t ~start:0 ~len:10;
  (* first fit reuses the hole at 0 *)
  (match A.alloc t ~cid:3 ~n:4 with
  | Some granted -> Alcotest.check runs "reuses hole" [ (0, 4) ] granted
  | None -> Alcotest.fail "alloc failed");
  A.verify t

let test_alloc_gathers_runs () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:1 ~n:npages);
  (* Free two disjoint holes of 4 and 6 pages. *)
  A.free_run t ~start:10 ~len:4;
  A.free_run t ~start:100 ~len:6;
  (match A.alloc t ~cid:2 ~n:8 with
  | Some granted -> Alcotest.check runs "two runs" [ (10, 4); (100, 4) ] granted
  | None -> Alcotest.fail "alloc failed");
  A.verify t;
  Alcotest.(check int) "2 pages left free" 2 (A.free_pages t)

let test_alloc_enospc () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:1 ~n:(npages - 4));
  Alcotest.(check bool) "too big" true (A.alloc t ~cid:2 ~n:5 = None);
  (* And nothing was consumed by the failed attempt. *)
  Alcotest.(check int) "free unchanged" 4 (A.free_pages t);
  A.verify t

let test_free_coalesces () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:1 ~n:30);
  A.free_run t ~start:0 ~len:10;
  A.free_run t ~start:20 ~len:10;
  A.free_run t ~start:10 ~len:10;
  (* middle merges both sides *)
  A.verify t;
  Alcotest.(check int) "all free" npages (A.free_pages t);
  (match A.alloc t ~cid:2 ~n:npages with
  | Some granted -> Alcotest.check runs "single run" [ (0, npages) ] granted
  | None -> Alcotest.fail "coalescing failed");
  A.verify t

let test_reassign () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:1 ~n:20);
  A.reassign t ~start:5 ~len:10 ~cid:2;
  A.verify t;
  Alcotest.(check int) "head keeps owner" 1 (A.owner_of t ~page:4);
  Alcotest.(check int) "moved" 2 (A.owner_of t ~page:9);
  Alcotest.(check int) "tail keeps owner" 1 (A.owner_of t ~page:16);
  Alcotest.check runs "runs of 2" [ (5, 10) ] (A.runs_of t ~cid:2);
  Alcotest.check runs "runs of 1 split" [ (0, 5); (15, 5) ] (A.runs_of t ~cid:1)

let test_runs_of_and_pages_of () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:5 ~n:3);
  ignore (A.alloc t ~cid:6 ~n:2);
  ignore (A.alloc t ~cid:5 ~n:2);
  Alcotest.check runs "two runs" [ (0, 3); (5, 2) ] (A.runs_of t ~cid:5);
  Alcotest.(check (list int)) "pages" [ 0; 1; 2; 5; 6 ] (A.pages_of t ~cid:5);
  Alcotest.(check int) "count" 5 (A.coffer_page_count t ~cid:5)

let test_free_coffer () =
  let _, t = mk () in
  ignore (A.alloc t ~cid:5 ~n:3);
  ignore (A.alloc t ~cid:6 ~n:2);
  ignore (A.alloc t ~cid:5 ~n:2);
  A.free_coffer t ~cid:5;
  A.verify t;
  Alcotest.check runs "gone" [] (A.runs_of t ~cid:5);
  Alcotest.(check int) "six still there" 6 (A.owner_of t ~page:3);
  Alcotest.(check int) "free" (npages - 2) (A.free_pages t)

let test_persistence_across_reload () =
  let dev, t = mk () in
  ignore (A.alloc t ~cid:3 ~n:7);
  ignore (A.alloc t ~cid:4 ~n:5);
  A.free_run t ~start:2 ~len:2;
  (* reload from NVM (clean shutdown) *)
  let t' = A.load dev ~base:0 ~npages in
  A.verify t';
  Alcotest.check runs "cid 3 split survives" [ (0, 2); (4, 3) ] (A.runs_of t' ~cid:3);
  Alcotest.check runs "cid 4 survives" [ (7, 5) ] (A.runs_of t' ~cid:4);
  Alcotest.(check int) "owner" 0 (A.owner_of t' ~page:2)

let test_reload_after_crash () =
  (* Allocation-table updates are persisted before [alloc] returns, so a
     crash right after must preserve the allocation. *)
  let dev, t = mk () in
  ignore (A.alloc t ~cid:9 ~n:16);
  D.crash ~policy:`Drop_all dev;
  let t' = A.load dev ~base:0 ~npages in
  A.verify t';
  Alcotest.check runs "allocation durable" [ (0, 16) ] (A.runs_of t' ~cid:9)

let qcheck_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random alloc/free keeps table consistent" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (pair (int_range 1 6) (int_range 1 20)))
    (fun ops ->
      let _, t = mk () in
      let owned : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (cid, n) ->
          match Hashtbl.find_opt owned cid with
          | Some ((start, len) :: rest) when n mod 3 = 0 ->
              (* sometimes free the oldest run of this coffer *)
              A.free_run t ~start ~len;
              Hashtbl.replace owned cid rest
          | _ -> (
              match A.alloc t ~cid ~n with
              | Some granted ->
                  let prev = Option.value ~default:[] (Hashtbl.find_opt owned cid) in
                  Hashtbl.replace owned cid (prev @ granted)
              | None -> ()))
        ops;
      A.verify t;
      (* Every tracked coffer's page count matches the table's view. *)
      Hashtbl.fold
        (fun cid runs ok ->
          ok
          && A.coffer_page_count t ~cid
             = List.fold_left (fun a (_, l) -> a + l) 0 runs)
        owned true)

let qcheck_owner_matches_runs =
  QCheck.Test.make ~name:"owner_of agrees with runs_of" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 20) (pair (int_range 1 5) (int_range 1 10)))
    (fun ops ->
      let _, t = mk () in
      List.iter (fun (cid, n) -> ignore (A.alloc t ~cid ~n)) ops;
      let ok = ref true in
      for cid = 1 to 5 do
        List.iter
          (fun (start, len) ->
            for p = start to start + len - 1 do
              if A.owner_of t ~page:p <> cid then ok := false
            done)
          (A.runs_of t ~cid)
      done;
      !ok)

let () =
  Alcotest.run "alloc_table"
    [
      ( "alloc",
        [
          Alcotest.test_case "format all free" `Quick test_format_all_free;
          Alcotest.test_case "contiguous" `Quick test_alloc_contiguous;
          Alcotest.test_case "first fit" `Quick test_alloc_first_fit;
          Alcotest.test_case "gathers runs" `Quick test_alloc_gathers_runs;
          Alcotest.test_case "ENOSPC" `Quick test_alloc_enospc;
        ] );
      ( "free+reassign",
        [
          Alcotest.test_case "coalescing" `Quick test_free_coalesces;
          Alcotest.test_case "reassign splits" `Quick test_reassign;
          Alcotest.test_case "runs_of/pages_of" `Quick test_runs_of_and_pages_of;
          Alcotest.test_case "free_coffer" `Quick test_free_coffer;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "reload" `Quick test_persistence_across_reload;
          Alcotest.test_case "crash + reload" `Quick test_reload_after_crash;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_random_ops_keep_invariants;
          QCheck_alcotest.to_alcotest qcheck_owner_matches_runs;
        ] );
    ]
