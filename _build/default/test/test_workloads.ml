(* Tests for the workload harness (runner, FxMark, Filebench) — including
   shape assertions that tie the paper's headline results to the test
   suite: if a calibration change breaks "who wins", these fail. *)

module Fx = Workloads.Fxmark
module Fb = Workloads.Filebench
module FL = Workloads.Fslab
module R = Workloads.Runner

let mops r = r.R.mops_per_sec

(* ---- runner ------------------------------------------------------------- *)

let test_runner_counts_ops () =
  let r =
    R.run ~nthreads:3 ~ops:10
      ~setup:(fun () -> ())
      ~worker:(fun () ~tid -> ignore tid; fun ~i -> ignore i; Sim.advance 100)
      ()
  in
  Alcotest.(check int) "total ops" 30 r.R.total_ops;
  Alcotest.(check int) "threads" 3 r.R.nthreads;
  (* 3 threads in parallel, 10 ops of 100ns each: elapsed = 1000ns *)
  Alcotest.(check int) "elapsed" 1000 r.R.elapsed_ns

let test_runner_deterministic () =
  let go () = Fx.drbl.Fx.run FL.Zofs ~nthreads:4 ~ops:20 in
  let a = go () and b = go () in
  Alcotest.(check int) "same simulated time" a.R.elapsed_ns b.R.elapsed_ns

let test_latency_helper () =
  let l =
    R.latency ~ops:10 ~setup:(fun () -> ()) ~op:(fun () ~i -> ignore i; Sim.advance 500) ()
  in
  Alcotest.(check (float 1.0)) "latency" 500.0 l

(* ---- fxmark workloads run on every system -------------------------------- *)

let test_all_fxmark_workloads_run () =
  List.iter
    (fun w ->
      List.iter
        (fun sys ->
          let r = w.Fx.run sys ~nthreads:2 ~ops:15 in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s produces throughput" w.Fx.wname (FL.label sys))
            true (mops r > 0.0))
        [ FL.Zofs; FL.Pmfs; FL.Nova; FL.Ext4_dax ])
    Fx.all

let test_strata_runs_data_workloads () =
  List.iter
    (fun w ->
      let r = w.Fx.run FL.Strata ~nthreads:2 ~ops:15 in
      Alcotest.(check bool) (w.Fx.wname ^ " on strata") true (mops r > 0.0))
    [ Fx.drbl; Fx.dwal; Fx.dwol ]

(* ---- headline shapes ------------------------------------------------------ *)

let test_zofs_wins_dwal_single_thread () =
  let z = Fx.dwal.Fx.run FL.Zofs ~nthreads:1 ~ops:60 in
  let p = Fx.dwal.Fx.run FL.Pmfs ~nthreads:1 ~ops:60 in
  let n = Fx.dwal.Fx.run FL.Nova ~nthreads:1 ~ops:60 in
  Alcotest.(check bool)
    (Printf.sprintf "zofs %.3f > pmfs %.3f" (mops z) (mops p))
    true (mops z > mops p);
  Alcotest.(check bool)
    (Printf.sprintf "zofs %.3f > nova %.3f" (mops z) (mops n))
    true (mops z > mops n)

let test_pmfs_allocator_stops_scaling () =
  (* Figure 7(d): PMFS's global allocator flattens; 20 threads buy little
     over 8. *)
  let at n = mops (Fx.dwal.Fx.run FL.Pmfs ~nthreads:n ~ops:60) in
  let t8 = at 8 and t20 = at 20 in
  Alcotest.(check bool)
    (Printf.sprintf "8t %.3f vs 20t %.3f" t8 t20)
    true (t20 < t8 *. 1.3)

let test_nova_overtakes_zofs_on_mwcl () =
  (* Figure 7(g): ZoFS stops scaling (coffer_enlarge) and NOVA passes it. *)
  let z20 = mops (Fx.mwcl.Fx.run FL.Zofs ~nthreads:20 ~ops:80) in
  let n20 = mops (Fx.mwcl.Fx.run FL.Nova ~nthreads:20 ~ops:80) in
  let z1 = mops (Fx.mwcl.Fx.run FL.Zofs ~nthreads:1 ~ops:80) in
  let n1 = mops (Fx.mwcl.Fx.run FL.Nova ~nthreads:1 ~ops:80) in
  Alcotest.(check bool)
    (Printf.sprintf "1 thread: zofs %.3f >= nova %.3f" z1 n1)
    true (z1 > n1 *. 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "20 threads: nova %.3f > zofs %.3f" n20 z20)
    true (n20 > z20)

let test_fig8_variant_ordering () =
  let run sys = mops (Fx.dwol.Fx.run sys ~nthreads:1 ~ops:60) in
  let zofs = run FL.Zofs in
  let sysempty = run FL.sysempty_variant in
  let kwrite = run FL.kwrite_variant in
  let pmfs = run FL.Pmfs in
  let pmfs_nc = run FL.Pmfs_nocache in
  let nova = run FL.Nova in
  let nova_ni = run FL.Nova_noindex in
  Alcotest.(check bool) "zofs > sysempty" true (zofs > sysempty);
  Alcotest.(check bool) "sysempty > kwrite" true (sysempty > kwrite);
  Alcotest.(check bool) "nocache > clwb pmfs" true (pmfs_nc > pmfs);
  Alcotest.(check bool) "noindex > nova" true (nova_ni > nova);
  Alcotest.(check bool) "zofs tops everything" true
    (List.for_all (fun v -> zofs > v) [ kwrite; pmfs; pmfs_nc; nova; nova_ni ])

let test_dwom_shared_file_does_not_scale () =
  (* per-file locks serialize a shared file (Figure 7(f)) *)
  let at n = mops (Fx.dwom.Fx.run FL.Zofs ~nthreads:n ~ops:60) in
  let t1 = at 1 and t12 = at 12 in
  Alcotest.(check bool)
    (Printf.sprintf "1t %.3f vs 12t %.3f" t1 t12)
    true (t12 < t1 *. 1.5)

(* ---- filebench ------------------------------------------------------------ *)

let test_filebench_personalities_run () =
  List.iter
    (fun p ->
      let r = p.Fb.run FL.Zofs ~nthreads:2 ~ops:10 in
      Alcotest.(check bool) (p.Fb.pname ^ " runs") true (mops r > 0.0))
    Fb.all

let test_zofs_wins_fileserver () =
  let z = mops (Fb.fileserver.Fb.run FL.Zofs ~nthreads:1 ~ops:25) in
  let n = mops (Fb.fileserver.Fb.run FL.Nova ~nthreads:1 ~ops:25) in
  Alcotest.(check bool) (Printf.sprintf "zofs %.4f > nova %.4f" z n) true (z > n)

let test_deep_paths_slow_zofs () =
  (* Figures 9(c)/(d): ZoFS's backwards path parsing makes small dir-width
     (deep trees) slower than the flat huge directory. *)
  let flat = mops (Fb.webproxy.Fb.run FL.Zofs ~nthreads:2 ~ops:20) in
  let deep = mops (Fb.webproxy.Fb.run ~dir_width:3 FL.Zofs ~nthreads:2 ~ops:20) in
  Alcotest.(check bool)
    (Printf.sprintf "flat %.4f > deep %.4f" flat deep)
    true (flat > deep)

let test_file_tree_builder () =
  let paths = Fb.file_paths ~nfiles:50 ~dir_width:1_000_000 in
  Alcotest.(check int) "flat count" 50 (List.length paths);
  Alcotest.(check bool) "flat single dir" true
    (List.for_all (fun p -> Treasury.Pathx.dirname p = "/bigdir") paths);
  let nested = Fb.file_paths ~nfiles:50 ~dir_width:4 in
  Alcotest.(check int) "nested count" 50 (List.length nested);
  Alcotest.(check bool) "nested has depth" true
    (List.exists (fun p -> List.length (Treasury.Pathx.components p) > 3) nested)

let () =
  Alcotest.run "workloads"
    [
      ( "runner",
        [
          Alcotest.test_case "counts ops" `Quick test_runner_counts_ops;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "latency helper" `Quick test_latency_helper;
        ] );
      ( "fxmark",
        [
          Alcotest.test_case "all workloads x all systems" `Slow
            test_all_fxmark_workloads_run;
          Alcotest.test_case "strata data workloads" `Quick
            test_strata_runs_data_workloads;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "zofs wins DWAL" `Quick test_zofs_wins_dwal_single_thread;
          Alcotest.test_case "pmfs allocator flattens" `Slow
            test_pmfs_allocator_stops_scaling;
          Alcotest.test_case "nova overtakes on MWCL" `Slow
            test_nova_overtakes_zofs_on_mwcl;
          Alcotest.test_case "fig8 variant ordering" `Slow test_fig8_variant_ordering;
          Alcotest.test_case "DWOM does not scale" `Slow
            test_dwom_shared_file_does_not_scale;
        ] );
      ( "filebench",
        [
          Alcotest.test_case "personalities run" `Slow test_filebench_personalities_run;
          Alcotest.test_case "zofs wins fileserver" `Slow test_zofs_wins_fileserver;
          Alcotest.test_case "deep paths slower" `Slow test_deep_paths_slow_zofs;
          Alcotest.test_case "tree builder" `Quick test_file_tree_builder;
        ] );
    ]
