(* Tests for the persistent path→coffer hash table and path utilities. *)

module P = Treasury.Path_map
module Pathx = Treasury.Pathx
module D = Nvm.Device

let mk ?(nbuckets = 64) () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(128 * Nvm.page_size) () in
  (* Slab pages handed out from the tail of the device. *)
  let next = ref 127 in
  let alloc_page () =
    if !next < P.region_pages nbuckets then None
    else begin
      let p = !next in
      decr next;
      Some p
    end
  in
  (dev, P.format dev ~base:0 ~nbuckets ~alloc_page)

(* ---- Pathx ------------------------------------------------------------- *)

let test_normalize () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Pathx.normalize input))
    [
      ("/", "/");
      ("/a/b", "/a/b");
      ("/a//b/", "/a/b");
      ("/a/./b", "/a/b");
      ("/a/../b", "/b");
      ("/../..", "/");
      ("/a/b/c/../../d", "/a/d");
    ]

let test_dirname_basename () =
  Alcotest.(check string) "dirname" "/a/b" (Pathx.dirname "/a/b/c");
  Alcotest.(check string) "dirname root child" "/" (Pathx.dirname "/a");
  Alcotest.(check string) "dirname root" "/" (Pathx.dirname "/");
  Alcotest.(check string) "basename" "c" (Pathx.basename "/a/b/c");
  Alcotest.(check string) "basename root" "/" (Pathx.basename "/")

let test_prefix_ops () =
  Alcotest.(check bool) "is_prefix" true (Pathx.is_prefix ~prefix:"/a/b" "/a/b/c");
  Alcotest.(check bool) "equal is prefix" true (Pathx.is_prefix ~prefix:"/a/b" "/a/b");
  Alcotest.(check bool) "not component boundary" false
    (Pathx.is_prefix ~prefix:"/a/b" "/a/bc");
  Alcotest.(check bool) "root prefixes all" true (Pathx.is_prefix ~prefix:"/" "/x");
  Alcotest.(check string) "strip" "/c" (Pathx.strip_prefix ~prefix:"/a/b" "/a/b/c");
  Alcotest.(check string) "strip equal" "/" (Pathx.strip_prefix ~prefix:"/a/b" "/a/b");
  Alcotest.(check string) "replace" "/x/y/c"
    (Pathx.replace_prefix ~old_prefix:"/a/b" ~new_prefix:"/x/y" "/a/b/c")

let test_concat () =
  Alcotest.(check string) "rel" "/a/b" (Pathx.concat "/a" "b");
  Alcotest.(check string) "abs wins" "/c" (Pathx.concat "/a" "/c");
  Alcotest.(check string) "dotdot" "/x" (Pathx.concat "/a/b" "../../x")

let test_valid_name () =
  Alcotest.(check bool) "ok" true (Pathx.valid_name "hello.txt");
  Alcotest.(check bool) "empty" false (Pathx.valid_name "");
  Alcotest.(check bool) "dot" false (Pathx.valid_name ".");
  Alcotest.(check bool) "dotdot" false (Pathx.valid_name "..");
  Alcotest.(check bool) "slash" false (Pathx.valid_name "a/b");
  Alcotest.(check bool) "too long" false (Pathx.valid_name (String.make 100 'x'))

(* ---- Path_map ----------------------------------------------------------- *)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" (Treasury.Errno.to_string e)

let test_insert_lookup () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/" ~cid:10);
  ok_or_fail (P.insert pm ~path:"/home" ~cid:20);
  Alcotest.(check (option int)) "root" (Some 10) (P.lookup pm "/");
  Alcotest.(check (option int)) "home" (Some 20) (P.lookup pm "/home");
  Alcotest.(check (option int)) "missing" None (P.lookup pm "/etc");
  Alcotest.(check int) "count" 2 (P.count pm)

let test_duplicate_rejected () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/a" ~cid:1);
  match P.insert pm ~path:"/a" ~cid:2 with
  | Error Treasury.Errno.EEXIST -> ()
  | _ -> Alcotest.fail "expected EEXIST"

let test_remove () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/a" ~cid:1);
  ok_or_fail (P.insert pm ~path:"/b" ~cid:2);
  ok_or_fail (P.remove pm "/a");
  Alcotest.(check (option int)) "gone" None (P.lookup pm "/a");
  Alcotest.(check (option int)) "kept" (Some 2) (P.lookup pm "/b");
  Alcotest.(check int) "count" 1 (P.count pm);
  (match P.remove pm "/a" with
  | Error Treasury.Errno.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT")

let test_slot_reuse () =
  let _, pm = mk () in
  for i = 1 to 100 do
    ok_or_fail (P.insert pm ~path:(Printf.sprintf "/f%d" i) ~cid:i)
  done;
  for i = 1 to 100 do
    ok_or_fail (P.remove pm (Printf.sprintf "/f%d" i))
  done;
  (* After full churn the free list must be able to satisfy new inserts. *)
  for i = 1 to 100 do
    ok_or_fail (P.insert pm ~path:(Printf.sprintf "/g%d" i) ~cid:i)
  done;
  Alcotest.(check int) "count" 100 (P.count pm);
  Alcotest.(check (option int)) "sample" (Some 50) (P.lookup pm "/g50")

let test_collisions_in_tiny_table () =
  (* One bucket: everything collides; chains must still work. *)
  let _, pm = mk ~nbuckets:1 () in
  for i = 1 to 40 do
    ok_or_fail (P.insert pm ~path:(Printf.sprintf "/dir%d" i) ~cid:(i * 7))
  done;
  for i = 1 to 40 do
    Alcotest.(check (option int))
      (Printf.sprintf "lookup %d" i)
      (Some (i * 7))
      (P.lookup pm (Printf.sprintf "/dir%d" i))
  done;
  (* Remove from the middle of a chain. *)
  ok_or_fail (P.remove pm "/dir20");
  Alcotest.(check (option int)) "removed" None (P.lookup pm "/dir20");
  Alcotest.(check (option int)) "before kept" (Some (19 * 7)) (P.lookup pm "/dir19");
  Alcotest.(check (option int)) "after kept" (Some (21 * 7)) (P.lookup pm "/dir21")

let test_rename () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/old" ~cid:5);
  ok_or_fail (P.rename pm ~old_path:"/old" ~new_path:"/new");
  Alcotest.(check (option int)) "old gone" None (P.lookup pm "/old");
  Alcotest.(check (option int)) "new there" (Some 5) (P.lookup pm "/new")

let test_set_cid () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/x" ~cid:1);
  ok_or_fail (P.set_cid pm ~path:"/x" ~cid:99);
  Alcotest.(check (option int)) "updated" (Some 99) (P.lookup pm "/x")

let test_longest_prefix () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/" ~cid:1);
  ok_or_fail (P.insert pm ~path:"/home" ~cid:2);
  ok_or_fail (P.insert pm ~path:"/home/alice" ~cid:3);
  let check path expected =
    Alcotest.(check (option (pair string int))) path expected (P.longest_prefix pm path)
  in
  check "/home/alice/doc.txt" (Some ("/home/alice", 3));
  check "/home/bob/x" (Some ("/home", 2));
  check "/etc/passwd" (Some ("/", 1));
  check "/home/alice" (Some ("/home/alice", 3))

let test_too_long_path () =
  let _, pm = mk () in
  match P.insert pm ~path:("/" ^ String.make 300 'a') ~cid:1 with
  | Error Treasury.Errno.ENAMETOOLONG -> ()
  | _ -> Alcotest.fail "expected ENAMETOOLONG"

let test_persistence_across_load () =
  let dev, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/" ~cid:1);
  ok_or_fail (P.insert pm ~path:"/data" ~cid:2);
  D.crash ~policy:`Drop_all dev;
  let next = ref 100 in
  let alloc_page () = decr next; Some !next in
  let pm' = P.load dev ~base:0 ~alloc_page in
  Alcotest.(check (option int)) "root survives" (Some 1) (P.lookup pm' "/");
  Alcotest.(check (option int)) "data survives" (Some 2) (P.lookup pm' "/data")

let test_iter_to_list () =
  let _, pm = mk () in
  ok_or_fail (P.insert pm ~path:"/a" ~cid:1);
  ok_or_fail (P.insert pm ~path:"/b" ~cid:2);
  ok_or_fail (P.insert pm ~path:"/c" ~cid:3);
  let l = P.to_list pm |> List.sort compare in
  Alcotest.(check (list (pair string int)))
    "all entries"
    [ ("/a", 1); ("/b", 2); ("/c", 3) ]
    l

let qcheck_model =
  QCheck.Test.make ~name:"path_map behaves like an assoc map" ~count:60
    QCheck.(
      list
        (pair bool (int_range 0 60)))
    (fun ops ->
      let _, pm = mk ~nbuckets:8 () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (ins, k) ->
          let path = Printf.sprintf "/p%d" k in
          if ins then begin
            match P.insert pm ~path ~cid:k with
            | Ok () -> Hashtbl.replace model path k
            | Error _ -> ()
          end
          else begin
            (match P.remove pm path with Ok () | Error _ -> ());
            Hashtbl.remove model path
          end)
        ops;
      Hashtbl.fold (fun p c ok -> ok && P.lookup pm p = Some c) model true
      && P.count pm = Hashtbl.length model)

let () =
  Alcotest.run "path_map"
    [
      ( "pathx",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "dirname/basename" `Quick test_dirname_basename;
          Alcotest.test_case "prefix ops" `Quick test_prefix_ops;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "valid_name" `Quick test_valid_name;
        ] );
      ( "map",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "duplicate" `Quick test_duplicate_rejected;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "slot reuse" `Quick test_slot_reuse;
          Alcotest.test_case "collisions" `Quick test_collisions_in_tiny_table;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "set_cid" `Quick test_set_cid;
          Alcotest.test_case "longest prefix" `Quick test_longest_prefix;
          Alcotest.test_case "too long" `Quick test_too_long_path;
          Alcotest.test_case "persistence" `Quick test_persistence_across_load;
          Alcotest.test_case "iteration" `Quick test_iter_to_list;
          QCheck_alcotest.to_alcotest qcheck_model;
        ] );
    ]
