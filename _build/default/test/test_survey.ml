(* Tests for the permission-survey substrate (Tables 3–4 of the paper). *)

open Testkit
module V = Treasury.Vfs
module Ft = Treasury.Fs_types

let okd = function
  | Ok v -> v
  | Error e -> Alcotest.failf "survey error: %s" (Treasury.Errno.to_string e)

let find_row rows ~kind ~perm =
  List.find_opt
    (fun r -> r.Survey.Appdirs.r_kind = kind && r.Survey.Appdirs.r_perm = perm)
    rows

let test_scan_counts_small_tree () =
  let w = make_world ~pages:8192 () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.mkdir fs "/app" 0o750);
      for i = 1 to 5 do
        ok_or_fail (V.write_file fs (Printf.sprintf "/app/f%d" i) ~mode:0o640 "xx")
      done;
      ok_or_fail (V.write_file fs "/app/readme" ~mode:0o644 "hello");
      let rows = Survey.Appdirs.scan fs ~system:"test" "/app" in
      (match find_row rows ~kind:Ft.Regular ~perm:0o640 with
      | Some r ->
          Alcotest.(check int) "640 count" 5 r.Survey.Appdirs.r_count;
          Alcotest.(check int) "640 bytes" 10 r.Survey.Appdirs.r_bytes
      | None -> Alcotest.fail "640 row missing");
      match find_row rows ~kind:Ft.Regular ~perm:0o644 with
      | Some r -> Alcotest.(check int) "644 count" 1 r.Survey.Appdirs.r_count
      | None -> Alcotest.fail "644 row missing")

let test_mysql_shape () =
  let w = make_world ~pages:32768 () in
  in_proc ~uid:970 w (fun fs ->
      okd (Survey.Appdirs.populate_mysql fs "/mysql");
      let rows = Survey.Appdirs.scan fs ~system:"MySQL" "/mysql" in
      (match find_row rows ~kind:Ft.Directory ~perm:0o750 with
      | Some r -> Alcotest.(check int) "6 dirs" 6 r.Survey.Appdirs.r_count
      | None -> Alcotest.fail "no 750 dirs");
      (match find_row rows ~kind:Ft.Regular ~perm:0o640 with
      | Some r -> Alcotest.(check int) "358 tables" 358 r.Survey.Appdirs.r_count
      | None -> Alcotest.fail "no 640 files");
      match find_row rows ~kind:Ft.Regular ~perm:0o644 with
      | Some r ->
          Alcotest.(check int) "1 flag file" 1 r.Survey.Appdirs.r_count;
          Alcotest.(check int) "flag is empty" 0 r.Survey.Appdirs.r_bytes
      | None -> Alcotest.fail "no 644 flag")

let test_postgres_shape () =
  let w = make_world ~pages:65536 () in
  in_proc ~uid:969 w (fun fs ->
      okd (Survey.Appdirs.populate_postgres fs "/pg");
      let rows = Survey.Appdirs.scan fs ~system:"PostgreSQL" "/pg" in
      (match find_row rows ~kind:Ft.Directory ~perm:0o700 with
      | Some r -> Alcotest.(check int) "28 dirs" 28 r.Survey.Appdirs.r_count
      | None -> Alcotest.fail "no 700 dirs");
      match find_row rows ~kind:Ft.Regular ~perm:0o600 with
      | Some r -> Alcotest.(check int) "1807 files" 1807 r.Survey.Appdirs.r_count
      | None -> Alcotest.fail "no 600 files")

(* ---- FSL synthesis + grouping ---------------------------------------------- *)

let test_fsl_marginals_match_table4 () =
  let files = Survey.Fsl.generate () in
  Alcotest.(check int) "total files" Survey.Fsl.total_files (Array.length files);
  Alcotest.(check int) "726,751 files" 726_751 (Array.length files);
  let m = Survey.Fsl.marginals files in
  let count kind perm =
    Option.value ~default:0 (Hashtbl.find_opt m (kind, perm))
  in
  Alcotest.(check int) "regular 644" 538_538 (count Survey.Fsl.Regular 0o644);
  Alcotest.(check int) "regular 600" 105_226 (count Survey.Fsl.Regular 0o600);
  Alcotest.(check int) "regular 440" 8 (count Survey.Fsl.Regular 0o440);
  Alcotest.(check int) "symlink 666" 6_468 (count Survey.Fsl.Symlink 0o666);
  Alcotest.(check int) "dirs 644" 65_127 (count Survey.Fsl.Directory 0o644);
  Alcotest.(check int) "regular total" 648_691
    (Survey.Fsl.count_kind files Survey.Fsl.Regular);
  Alcotest.(check int) "symlink total" 6_486
    (Survey.Fsl.count_kind files Survey.Fsl.Symlink);
  Alcotest.(check int) "dir total" 71_574
    (Survey.Fsl.count_kind files Survey.Fsl.Directory)

let test_grouping_rule_on_hand_built_tree () =
  (* root(644) ── a(644) ── f1(644): same group
                └─ b(600) ── f2(600): b starts a group, f2 joins it
                └─ f3(666): its own group *)
  let mk id parent kind perm =
    { Survey.Fsl.id; parent; kind; perm; uid = 1; gid = 1; size = 10 }
  in
  let files =
    [|
      mk 0 (-1) Survey.Fsl.Directory 0o644;
      mk 1 0 Survey.Fsl.Directory 0o644;
      mk 2 1 Survey.Fsl.Regular 0o644;
      mk 3 0 Survey.Fsl.Directory 0o600;
      mk 4 3 Survey.Fsl.Regular 0o600;
      mk 5 0 Survey.Fsl.Regular 0o666;
    |]
  in
  let s = Survey.Grouping.analyze files in
  Alcotest.(check int) "3 groups" 3 s.Survey.Grouping.n_groups;
  Alcotest.(check int) "largest group" 3 s.Survey.Grouping.largest_files;
  Alcotest.(check int) "one single-file group" 1
    s.Survey.Grouping.single_file_groups

let test_grouping_uses_rw_class () =
  (* 755 dir and 644 file share the rw class (644): one group. *)
  let mk id parent kind perm =
    { Survey.Fsl.id; parent; kind; perm; uid = 1; gid = 1; size = 1 }
  in
  let files =
    [| mk 0 (-1) Survey.Fsl.Directory 0o755; mk 1 0 Survey.Fsl.Regular 0o644 |]
  in
  let s = Survey.Grouping.analyze files in
  Alcotest.(check int) "one group" 1 s.Survey.Grouping.n_groups

let test_grouping_separates_owners () =
  (* same permission, different uid: distinct groups *)
  let files =
    [|
      { Survey.Fsl.id = 0; parent = -1; kind = Survey.Fsl.Directory; perm = 0o644; uid = 1; gid = 1; size = 0 };
      { Survey.Fsl.id = 1; parent = 0; kind = Survey.Fsl.Regular; perm = 0o644; uid = 2; gid = 2; size = 5 };
    |]
  in
  let s = Survey.Grouping.analyze files in
  Alcotest.(check int) "two groups" 2 s.Survey.Grouping.n_groups

let test_fsl_grouping_shape () =
  (* The paper finds 4,449 groups with the largest holding ~1/3 of all
     files and single-file groups covering only ~0.6%.  The synthetic
     snapshot must land in the same regime. *)
  let files = Survey.Fsl.generate () in
  let s = Survey.Grouping.analyze files in
  Alcotest.(check bool)
    (Printf.sprintf "groups in the thousands (%d)" s.Survey.Grouping.n_groups)
    true
    (s.Survey.Grouping.n_groups > 500 && s.Survey.Grouping.n_groups < 50_000);
  let frac =
    float_of_int s.Survey.Grouping.largest_files
    /. float_of_int (Array.length files)
  in
  Alcotest.(check bool)
    (Printf.sprintf "largest group holds a big chunk (%.2f)" frac)
    true (frac > 0.10);
  let single_frac =
    float_of_int s.Survey.Grouping.single_file_total
    /. float_of_int (Array.length files)
  in
  Alcotest.(check bool)
    (Printf.sprintf "single-file groups are rare (%.4f)" single_frac)
    true (single_frac < 0.05)

(* ---- MobiGen ------------------------------------------------------------------ *)

let test_mobigen_facebook () =
  let c = Survey.Mobigen.analyze (Survey.Mobigen.facebook ()) in
  Alcotest.(check int) "64,282 calls" 64_282 c.Survey.Mobigen.total;
  Alcotest.(check int) "no chmod" 0 c.Survey.Mobigen.chmods;
  Alcotest.(check int) "no chown" 0 c.Survey.Mobigen.chowns

let test_mobigen_twitter () =
  let c = Survey.Mobigen.analyze (Survey.Mobigen.twitter ()) in
  Alcotest.(check int) "25,306 calls" 25_306 c.Survey.Mobigen.total;
  Alcotest.(check int) "16 chmods" 16 c.Survey.Mobigen.chmods;
  Alcotest.(check int) "no chown" 0 c.Survey.Mobigen.chowns;
  Alcotest.(check int) "all in shadow pattern" 16 c.Survey.Mobigen.shadow_patterns

let () =
  Alcotest.run "survey"
    [
      ( "appdirs",
        [
          Alcotest.test_case "scan counts" `Quick test_scan_counts_small_tree;
          Alcotest.test_case "mysql shape" `Quick test_mysql_shape;
          Alcotest.test_case "postgres shape" `Slow test_postgres_shape;
        ] );
      ( "fsl",
        [
          Alcotest.test_case "marginals = Table 4" `Slow
            test_fsl_marginals_match_table4;
          Alcotest.test_case "grouping rule" `Quick
            test_grouping_rule_on_hand_built_tree;
          Alcotest.test_case "rw class" `Quick test_grouping_uses_rw_class;
          Alcotest.test_case "owners separate" `Quick test_grouping_separates_owners;
          Alcotest.test_case "grouping shape" `Slow test_fsl_grouping_shape;
        ] );
      ( "mobigen",
        [
          Alcotest.test_case "facebook" `Quick test_mobigen_facebook;
          Alcotest.test_case "twitter" `Quick test_mobigen_twitter;
        ] );
    ]
