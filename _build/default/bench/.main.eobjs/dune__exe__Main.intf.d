bench/main.mli:
