bench/report.ml: Buffer List Printf String
