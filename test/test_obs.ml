(* Tests for the observability layer (lib/obs): histogram bucket math and
   merge laws, snapshot round-trips, multi-subscriber trace dispatch (the
   lib/check + lib/obs composition regression), lease retry accounting,
   span balance / Chrome-trace well-formedness, and the zero-sim-cost
   guarantee of enabling obs. *)

module D = Nvm.Device
module H = Obs.Hist
module J = Obs.Json
module V = Treasury.Vfs

let pg = Nvm.page_size

(* Run [f] with obs freshly enabled, then restore the disabled default so
   the global switch never leaks into other tests. *)
let with_obs ?(spans = true) f =
  Obs.enable ~spans ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let cval name = Obs.Counter.value (Obs.Counter.make name)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---- histogram edge cases ----------------------------------------------- *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check int) "min" 0 (H.min_value h);
  Alcotest.(check int) "max" 0 (H.max_value h);
  Alcotest.(check int) "sum" 0 (H.sum h);
  Alcotest.(check int) "p50" 0 (H.percentile h 0.5);
  Alcotest.(check int) "p99" 0 (H.percentile h 0.99);
  Alcotest.(check (list (pair int int))) "no buckets" [] (H.buckets h)

let test_hist_single () =
  let h = H.create () in
  H.add h 12345;
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check int) "min" 12345 (H.min_value h);
  Alcotest.(check int) "max" 12345 (H.max_value h);
  Alcotest.(check int) "sum" 12345 (H.sum h);
  (* all percentiles of a single sample are that sample (clamped to the
     observed min/max even though the bucket is ~12.5% wide) *)
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "p%g" (q *. 100.))
        12345 (H.percentile h q))
    [ 0.01; 0.5; 0.9; 0.99; 1.0 ]

let test_hist_negative_clamped () =
  let h = H.create () in
  H.add h (-7);
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check int) "clamped to 0" 0 (H.max_value h)

let test_hist_bucket_boundaries () =
  (* values 0..15 get exact singleton buckets *)
  for v = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "index %d" v) v (H.bucket_index v);
    Alcotest.(check (pair int int))
      (Printf.sprintf "bounds %d" v)
      (v, v)
      (H.bucket_bounds (H.bucket_index v))
  done;
  (* every bucket contains the values that index into it *)
  let probes =
    [ 15; 16; 17; 31; 32; 33; 63; 64; 100; 255; 256; 1023; 1024; 1_000_000;
      max_int / 2; max_int ]
  in
  List.iter
    (fun v ->
      let b = H.bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "index %d in range" v)
        true
        (b >= 0 && b < H.nbuckets);
      let lo, hi = H.bucket_bounds b in
      Alcotest.(check bool)
        (Printf.sprintf "%d within [%d,%d]" v lo hi)
        true
        (lo <= v && v <= hi))
    probes;
  (* bucket_index is monotone across boundaries... *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %d" v)
        true
        (H.bucket_index v <= H.bucket_index (v + 1)))
    [ 14; 15; 16; 17; 31; 32; 63; 64; 127; 128; 1023; 1024 ];
  (* ...and consecutive buckets tile the value space with no gap/overlap *)
  for b = 0 to 99 do
    let _, hi = H.bucket_bounds b in
    let lo', _ = H.bucket_bounds (b + 1) in
    Alcotest.(check int) (Printf.sprintf "adjacent %d" b) (hi + 1) lo'
  done

let hist_of values =
  let h = H.create () in
  List.iter (H.add h) values;
  h

let hist_eq name a b =
  Alcotest.(check int) (name ^ " count") (H.count a) (H.count b);
  Alcotest.(check int) (name ^ " sum") (H.sum a) (H.sum b);
  Alcotest.(check int) (name ^ " min") (H.min_value a) (H.min_value b);
  Alcotest.(check int) (name ^ " max") (H.max_value a) (H.max_value b);
  Alcotest.(check (list (pair int int)))
    (name ^ " buckets") (H.buckets a) (H.buckets b);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "%s p%g" name (q *. 100.))
        (H.percentile a q) (H.percentile b q))
    [ 0.5; 0.9; 0.99 ]

let test_hist_merge_associative () =
  let a = hist_of [ 1; 5; 17; 100 ]
  and b = hist_of [ 0; 2_000; 2_001 ]
  and c = hist_of [ 12345; 7 ] in
  hist_eq "assoc" (H.merge (H.merge a b) c) (H.merge a (H.merge b c));
  hist_eq "comm" (H.merge a b) (H.merge b a);
  (* merge is pure: inputs unchanged *)
  Alcotest.(check int) "a untouched" 4 (H.count a);
  Alcotest.(check int) "b untouched" 3 (H.count b);
  (* merging the empty histogram is the identity *)
  hist_eq "unit" (H.merge a (H.create ())) a

(* ---- registry + snapshots ----------------------------------------------- *)

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  Obs.cnt "test.noop" 5;
  Obs.observe "test.noop_h" 100;
  Alcotest.(check int) "counter untouched" 0 (cval "test.noop");
  Alcotest.(check int) "hist untouched" 0
    (H.count (Obs.Histogram.hist (Obs.Histogram.make "test.noop_h")))

let test_snapshot_diff_and_roundtrip () =
  with_obs (fun () ->
      Obs.cnt "test.ops" 10;
      Obs.observe "test.lat" 100;
      let s1 = Obs.Snapshot.take () in
      Obs.cnt "test.ops" 32;
      Obs.observe "test.lat" 3_000;
      let s2 = Obs.Snapshot.take () in
      let d = Obs.Snapshot.diff s1 s2 in
      (* the diff shows only the delta... *)
      let r = Obs.Snapshot.render ~title:"delta" d in
      Alcotest.(check bool) "delta counter" true (contains r "32");
      (* ...and snapshots survive a JSON round-trip bit-for-bit *)
      let json = Obs.Snapshot.to_json s2 in
      match Obs.Snapshot.of_json json with
      | Error e -> Alcotest.failf "of_json: %s" e
      | Ok s2' ->
          Alcotest.(check string)
            "render equal after round-trip"
            (Obs.Snapshot.render s2)
            (Obs.Snapshot.render s2');
          (* and the re-encoded JSON is identical *)
          Alcotest.(check string)
            "json stable"
            (J.to_string json)
            (J.to_string (Obs.Snapshot.to_json s2')))

let test_json_parse () =
  (match J.of_string {| {"a": [1, 2.5, true, null, "xA"], "b": {}} |} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j -> (
      match J.member "a" j with
      | Some (J.Arr [ J.Num 1.; J.Num 2.5; J.Bool true; J.Null; J.Str "xA" ])
        ->
          ()
      | _ -> Alcotest.fail "unexpected structure"));
  match J.of_string "{broken" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON"

(* ---- multi-subscriber trace dispatch (satellite: check + obs compose) --- *)

let test_device_subscribers_both_fire () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * pg) () in
  let n1 = ref 0 and n2 = ref 0 in
  let s1 = D.add_trace_subscriber dev (fun _ -> incr n1) in
  let _s2 = D.add_trace_subscriber dev (fun _ -> incr n2) in
  D.write_u64 dev 0 42;
  Alcotest.(check bool) "first fired" true (!n1 > 0);
  Alcotest.(check int) "both saw the same events" !n1 !n2;
  D.remove_trace_subscriber dev s1;
  let before = !n2 in
  D.write_u64 dev 8 43;
  Alcotest.(check int) "removed subscriber silent" 1 !n1;
  Alcotest.(check bool) "remaining still fires" true (!n2 > before)

let test_device_legacy_hook_slot () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * pg) () in
  let sub = ref 0 and h1 = ref 0 and h2 = ref 0 in
  ignore (D.add_trace_subscriber dev (fun _ -> incr sub));
  D.set_trace_hook dev (fun _ -> incr h1);
  D.write_u64 dev 0 1;
  Alcotest.(check bool) "hook fired" true (!h1 > 0);
  (* setting again replaces only the legacy slot, not the subscriber *)
  D.set_trace_hook dev (fun _ -> incr h2);
  let h1_frozen = !h1 and sub_before = !sub in
  D.write_u64 dev 0 2;
  Alcotest.(check int) "old hook replaced" h1_frozen !h1;
  Alcotest.(check bool) "new hook fires" true (!h2 > 0);
  Alcotest.(check bool) "subscriber unaffected" true (!sub > sub_before);
  D.clear_trace_hook dev;
  let h2_frozen = !h2 and sub_before = !sub in
  D.write_u64 dev 0 3;
  Alcotest.(check int) "cleared hook silent" h2_frozen !h2;
  Alcotest.(check bool) "subscriber survives clear" true (!sub > sub_before)

let test_mpk_subscribers_both_fire () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * pg) () in
  let mpk = Mpk.create dev in
  let n1 = ref 0 and n2 = ref 0 in
  let s1 = Mpk.add_trace_subscriber mpk (fun _ -> incr n1) in
  let _s2 = Mpk.add_trace_subscriber mpk (fun _ -> incr n2) in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  Sim.run_thread ~proc (fun () ->
      Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write) ];
      Mpk.with_keys mpk [ (2, Mpk.Pk_read) ] (fun () -> ()));
  Alcotest.(check bool) "first fired" true (!n1 > 0);
  Alcotest.(check int) "both saw the same events" !n1 !n2;
  Mpk.remove_trace_subscriber mpk s1;
  let frozen = !n1 in
  Sim.run_thread ~proc (fun () -> Mpk.wrpkru mpk [ (1, Mpk.Pk_read) ]);
  Alcotest.(check int) "removed subscriber silent" frozen !n1

(* The regression the satellite asks for: lib/check (legacy hook slot) and
   lib/obs (subscriber) attached to one device, both observing. *)
let test_check_and_obs_compose () =
  let dev = D.create ~perf:Nvm.Perf.optane ~size:(64 * pg) () in
  let _t =
    Check.attach ~persist:Check.Log ~guideline:Check.Off ~lock:Check.Off dev
  in
  Check.reset_report ();
  Fun.protect
    ~finally:(fun () ->
      Check.detach ();
      Check.reset_report ())
    (fun () ->
      with_obs (fun () ->
          Obs.attach_device dev;
          let media0 = cval "nvm.media_ns" in
          Sim.run_thread (fun () ->
              D.write_u64 dev 0 42;
              (* publish without flush: the checker must still fire *)
              Check.publish dev ~label:"inode-commit" 0 64);
          let rules =
            List.map
              (fun v -> v.Check.v_rule)
              (Check.report ()).Check.r_violations
          in
          Alcotest.(check (list string)) "check fires" [ "missing-flush" ]
            rules;
          Alcotest.(check bool) "obs accounted media time" true
            (cval "nvm.media_ns" > media0)))

(* ---- lease accounting (satellite) --------------------------------------- *)

let test_uncontended_acquire_zero_retries () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * pg) () in
  with_obs (fun () ->
      let acq0 = cval "lease.acquires" and rty0 = cval "lease.retries" in
      Sim.run_thread (fun () ->
          Zofs.Lease.acquire dev pg;
          Zofs.Lease.release dev pg);
      Alcotest.(check int) "one acquire" (acq0 + 1) (cval "lease.acquires");
      Alcotest.(check int) "zero retries" rty0 (cval "lease.retries"))

let test_contended_acquire_counts_retries () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * pg) () in
  with_obs (fun () ->
      Sim.run_thread (fun () ->
          (* a foreign owner holds the lease until t=10µs: the acquire must
             spin (backoff 200 ns per attempt) until it expires, then steal *)
          D.write_u64 dev pg ((10_000 lsl 16) lor 0xBEEF);
          Zofs.Lease.acquire dev pg);
      Alcotest.(check bool) "retries recorded" true (cval "lease.retries" > 0);
      Alcotest.(check bool) "wait recorded" true (cval "lease.wait_ns" > 0);
      Alcotest.(check int) "one acquire" 1 (cval "lease.acquires"))

(* ---- spans + Chrome trace export ---------------------------------------- *)

let test_spans_balanced_and_trace_valid () =
  with_obs (fun () ->
      Sim.run_thread (fun () ->
          Obs.span ~cat:"test" ~name:"outer" (fun () ->
              Sim.advance 100;
              Obs.span ~cat:"test" ~name:"inner" (fun () -> Sim.advance 50);
              Sim.advance 25);
          Obs.span ~cat:"test" ~name:"second" (fun () -> Sim.advance 10));
      Alcotest.(check int) "balanced" 0 (Obs.Trace.open_spans ());
      Alcotest.(check int) "recorded" 3 (Obs.Trace.recorded ());
      Alcotest.(check int) "no drops" 0 (Obs.Trace.dropped ());
      let json = Obs.Trace.to_json () in
      (match Obs.Trace.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.failf "trace invalid: %s" e);
      (* sim-time monotonicity: spans are recorded at end time, so end
         timestamps (ts + dur) must be non-decreasing in export order, and
         every begin/end pair must be non-negative (Chrome trace format) *)
      let evs =
        match J.member "traceEvents" json with
        | Some (J.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check int) "all spans exported" 3 (List.length evs);
      let num k ev =
        match J.member k ev with
        | Some (J.Num f) -> f
        | _ -> Alcotest.failf "missing numeric %s" k
      in
      let last_end = ref 0.0 in
      List.iter
        (fun ev ->
          (match J.member "ph" ev with
          | Some (J.Str "X") -> ()
          | _ -> Alcotest.fail "not a complete event");
          let ts = num "ts" ev and dur = num "dur" ev in
          Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
          Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
          Alcotest.(check bool) "ends ordered" true (ts +. dur >= !last_end);
          last_end := ts +. dur)
        evs;
      (* the exported JSON string round-trips through the parser and still
         validates (what bin/zofs_obs gates on) *)
      match J.of_string (J.to_string json) with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok j -> (
          match Obs.Trace.validate j with
          | Ok () -> ()
          | Error e -> Alcotest.failf "reparsed trace invalid: %s" e))

let test_span_ring_drops () =
  with_obs (fun () ->
      Obs.Trace.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_capacity 65536)
        (fun () ->
          for i = 1 to 6 do
            Obs.span ~cat:"test" ~name:(string_of_int i) (fun () -> ())
          done;
          Alcotest.(check int) "ring holds capacity" 4 (Obs.Trace.recorded ());
          Alcotest.(check int) "drops counted" 2 (Obs.Trace.dropped ());
          let json = Obs.Trace.to_json () in
          (match Obs.Trace.validate json with
          | Ok () -> ()
          | Error e -> Alcotest.failf "trace invalid: %s" e);
          (* oldest spans were evicted: the survivors are 3..6 *)
          match J.member "traceEvents" json with
          | Some (J.Arr evs) ->
              let names =
                List.map
                  (fun ev ->
                    match J.member "name" ev with
                    | Some (J.Str s) -> s
                    | _ -> Alcotest.fail "unnamed span")
                  evs
              in
              Alcotest.(check (list string))
                "oldest evicted" [ "3"; "4"; "5"; "6" ] names
          | _ -> Alcotest.fail "no traceEvents array"))

let test_span_exception_safe () =
  with_obs (fun () ->
      (try
         Obs.span ~cat:"test" ~name:"boom" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "span closed on exception" 0
        (Obs.Trace.open_spans ());
      Alcotest.(check int) "span still recorded" 1 (Obs.Trace.recorded ()))

(* ---- syscall instrumentation + layer attribution ------------------------ *)

let test_with_syscall_histogram_and_layers () =
  with_obs (fun () ->
      Sim.run_thread (fun () ->
          Obs.with_syscall "probe" (fun () -> Sim.advance 100));
      Alcotest.(check int) "syscall counted" 1 (cval "syscall.count");
      let h = Obs.Histogram.hist (Obs.Histogram.make "syscall.probe") in
      Alcotest.(check int) "one sample" 1 (H.count h);
      Alcotest.(check int) "latency exact" 100 (H.percentile h 0.5);
      Alcotest.(check int) "total attributed" 100 (cval "layer.total_ns");
      (* no gate/media/lease inside: everything is FSLib time *)
      Alcotest.(check int) "fslib gets the rest" 100 (cval "layer.fslib_ns");
      let parts =
        cval "layer.fslib_ns" + cval "layer.kernfs_ns"
        + cval "layer.media_ns" + cval "layer.lease_ns"
      in
      Alcotest.(check bool) "parts <= total" true
        (parts <= cval "layer.total_ns"))

(* End-to-end through the real FS: the layer split must account the full
   syscall time and the trace must stay balanced. *)
let run_fs_ops w =
  Testkit.in_proc w (fun fs ->
      let t0 = Sim.now () in
      Testkit.ok_or_fail (V.mkdir fs "/d" 0o755);
      Testkit.ok_or_fail (V.write_file fs "/d/f" ~mode:0o644 "payload");
      Alcotest.(check string)
        "read back" "payload"
        (Testkit.ok_or_fail (V.read_file fs "/d/f"));
      Testkit.ok_or_fail (V.unlink fs "/d/f");
      Testkit.ok_or_fail (V.rmdir fs "/d");
      Sim.now () - t0)

let test_layer_split_end_to_end () =
  let w = Testkit.make_world () in
  with_obs (fun () ->
      Obs.attach_device w.Testkit.dev;
      let elapsed = run_fs_ops w in
      Alcotest.(check bool) "syscalls observed" true (cval "syscall.count" > 0);
      Alcotest.(check bool) "gate crossings" true (cval "gate.crossings" > 0);
      let total = cval "layer.total_ns" in
      Alcotest.(check bool) "total covers the ops" true
        (total > 0 && total <= elapsed);
      let parts =
        cval "layer.fslib_ns" + cval "layer.kernfs_ns"
        + cval "layer.media_ns" + cval "layer.lease_ns"
      in
      Alcotest.(check bool) "split sums within total" true (parts <= total);
      Alcotest.(check int) "trace balanced" 0 (Obs.Trace.open_spans ());
      Alcotest.(check bool) "spans recorded" true (Obs.Trace.recorded () > 0);
      match Obs.Trace.validate (Obs.Trace.to_json ()) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "trace invalid: %s" e)

(* Acceptance criterion: enabling obs must not change simulated time — not
   with spans, and not with the full plane (labels + tracing + flight
   recorder + SLOs) either.  run_fs_ops itself asserts the simulated
   *results* (read-back contents) are identical in every configuration. *)
let test_obs_costs_no_sim_time () =
  Obs.disable ();
  Obs.reset ();
  let elapsed_off = run_fs_ops (Testkit.make_world ()) in
  let elapsed_spans =
    with_obs (fun () ->
        let w = Testkit.make_world () in
        Obs.attach_device w.Testkit.dev;
        run_fs_ops w)
  in
  let elapsed_full =
    with_obs (fun () ->
        Obs.Slo.define ~name:"write-p99" ~op:"write" ~p99_target_ns:1;
        Fun.protect ~finally:Obs.Slo.clear_definitions (fun () ->
            let w = Testkit.make_world () in
            Obs.attach_device w.Testkit.dev;
            let elapsed = run_fs_ops w in
            ignore (Obs.Slo.publish (Obs.Snapshot.take ()));
            Alcotest.(check bool) "flight saw the ops" true
              (Obs.Flight.total () > 0);
            elapsed))
  in
  Alcotest.(check int) "sim-time identical with spans on" elapsed_off
    elapsed_spans;
  Alcotest.(check int) "sim-time identical with full obs on" elapsed_off
    elapsed_full

(* ---- JSON round-trips (satellite) --------------------------------------- *)

let test_json_string_escapes () =
  let nasty = "a\"b\\c\nd\te\rf\x01g" in
  let j = J.Obj [ (nasty, J.Arr [ J.Str nasty ]) ] in
  match J.of_string (J.to_string j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' ->
      Alcotest.(check bool) "escaped string round-trips" true (j = j');
      (match J.member nasty j' with
      | Some (J.Arr [ J.Str s ]) ->
          Alcotest.(check string) "value intact" nasty s
      | _ -> Alcotest.fail "escaped key not found")

let test_json_nested_roundtrip () =
  let j =
    J.Arr
      [
        J.Arr [ J.Num 1.; J.Arr [ J.Num 2.; J.Arr [] ] ];
        J.Obj
          [
            ("k", J.Arr [ J.Bool true; J.Null; J.Obj [ ("", J.Str "") ] ]);
            ("n", J.Num (-0.5));
          ];
      ]
  in
  match J.of_string (J.to_string j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' ->
      Alcotest.(check bool) "nested structure round-trips" true (j = j');
      Alcotest.(check string) "re-encoding stable" (J.to_string j)
        (J.to_string j')

let test_json_malformed () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed JSON: %s" s)
    [
      ""; "{"; "[1,"; "\"unterminated"; "{\"a\":}"; "tru"; "[1 2]";
      "{\"a\" 1}"; "{\"a\":1} trailing"; "nul"; "[]]";
    ]

(* ---- histogram percentiles at bucket edges + after merge (satellite) ---- *)

let test_hist_percentile_bucket_edges () =
  (* a single sample sitting exactly on a bucket edge reads back exactly *)
  List.iter
    (fun v ->
      let h = hist_of [ v ] in
      List.iter
        (fun q ->
          Alcotest.(check int)
            (Printf.sprintf "edge %d p%g" v (q *. 100.))
            v (H.percentile h q))
        [ 0.01; 0.5; 0.99; 1.0 ])
    [ 0; 15; 16; 31; 32; 33; 1023; 1024 ];
  (* within one histogram, percentile is monotone in q and clamped to the
     observed [min,max] even at the extreme quantiles *)
  let h = hist_of [ 16; 16; 16; 31 ] in
  Alcotest.(check int) "p100 = max" 31 (H.percentile h 1.0);
  (* low quantiles report a value within the minimum's bucket: the estimate
     is bucket-granular, never below the true min nor past its bucket *)
  let p1 = H.percentile h 0.01 in
  let _, min_hi = H.bucket_bounds (H.bucket_index (H.min_value h)) in
  Alcotest.(check bool) "p1 within min bucket" true (p1 >= 16 && p1 <= min_hi);
  let last = ref 0 in
  List.iter
    (fun q ->
      let p = H.percentile h q in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at p%g" (q *. 100.))
        true (p >= !last);
      Alcotest.(check bool) "within [min,max]" true
        (p >= H.min_value h && p <= H.max_value h);
      last := p)
    [ 0.01; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let test_hist_percentile_after_merge () =
  let a = hist_of (List.init 8 (fun i -> i + 1))
  and b = hist_of (List.init 8 (fun i -> 1000 + i)) in
  let m = H.merge a b in
  Alcotest.(check int) "count" 16 (H.count m);
  Alcotest.(check int) "min" 1 (H.min_value m);
  Alcotest.(check int) "max" 1007 (H.max_value m);
  Alcotest.(check int) "p100 = max" 1007 (H.percentile m 1.0);
  Alcotest.(check int) "p1 = min" 1 (H.percentile m 0.01);
  (* the two disjoint clusters are separated by the median *)
  Alcotest.(check bool) "p25 in low cluster" true (H.percentile m 0.25 < 500);
  Alcotest.(check bool) "p75 in high cluster" true (H.percentile m 0.75 > 500);
  (* merging preserves tail counting *)
  Alcotest.(check int) "count_over mid" 8 (H.count_over m 500);
  (* conservative: the bucket containing the threshold counts as under *)
  Alcotest.(check int) "count_over at max bucket" 0 (H.count_over m 1000);
  Alcotest.(check int) "count_over zero" 16 (H.count_over m 0)

(* ---- labels (tentpole: dimensioned metrics) ----------------------------- *)

let test_labels_canonical_and_series () =
  let a = Obs.Labels.v [ ("b", "2"); ("a", "1") ]
  and b = Obs.Labels.v [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check string) "canonical order" "a=1,b=2" (Obs.Labels.to_string a);
  Alcotest.(check string) "interned equal" (Obs.Labels.to_string a)
    (Obs.Labels.to_string b);
  Alcotest.(check (list (pair string string)))
    "pairs sorted"
    [ ("a", "1"); ("b", "2") ]
    (Obs.Labels.pairs a);
  Alcotest.(check string) "series" "x{a=1,b=2}" (Obs.Labels.series "x" a);
  Alcotest.(check string) "empty series is bare" "x"
    (Obs.Labels.series "x" Obs.Labels.empty);
  let base, pairs = Obs.Labels.parse_series "x{a=1,b=2}" in
  Alcotest.(check string) "parse base" "x" base;
  Alcotest.(check (list (pair string string)))
    "parse pairs"
    [ ("a", "1"); ("b", "2") ]
    pairs;
  let base, pairs = Obs.Labels.parse_series "bare" in
  Alcotest.(check string) "bare base" "bare" base;
  Alcotest.(check (list (pair string string))) "bare pairs" [] pairs;
  Alcotest.(check (list (pair string string)))
    "of_coffer"
    [ ("coffer", "7") ]
    (Obs.Labels.pairs (Obs.Labels.of_coffer 7))

let test_labels_invalid () =
  List.iter
    (fun pairs ->
      match Obs.Labels.v pairs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "accepted invalid labels")
    [
      [ ("a", "1"); ("a", "2") ];
      [ ("a,b", "1") ];
      [ ("a", "x=y") ];
      [ ("a", "{") ];
      [ ("}", "1") ];
    ]

let test_labeled_series_in_snapshot () =
  with_obs (fun () ->
      let l = Obs.Labels.v [ ("coffer", "3"); ("op", "append") ] in
      Obs.cnt_l "test.labeled" l 5;
      Obs.observe_l "test.labeled_h" l 128;
      let snap = Obs.Snapshot.take () in
      Alcotest.(check (option int))
        "labelled counter readable" (Some 5)
        (Obs.Snapshot.counter_value snap "test.labeled{coffer=3,op=append}");
      (match Obs.Snapshot.labeled snap ~base:"test.labeled_h" with
      | [ (pairs, Obs.Snapshot.L_hist h) ] ->
          Alcotest.(check (list (pair string string)))
            "slice pairs"
            [ ("coffer", "3"); ("op", "append") ]
            pairs;
          Alcotest.(check int) "slice count" 1 (H.count h)
      | _ -> Alcotest.fail "expected exactly one labelled slice");
      (* labelled series are excluded from the flat tables but render in
         the top-k view, and survive the JSON round-trip *)
      let r = Obs.Snapshot.render snap in
      Alcotest.(check bool) "flat render unpolluted" false
        (contains r "test.labeled{");
      match Obs.Snapshot.of_json (Obs.Snapshot.to_json snap) with
      | Error e -> Alcotest.failf "of_json: %s" e
      | Ok snap' ->
          Alcotest.(check (option int))
            "labelled counter survives round-trip" (Some 5)
            (Obs.Snapshot.counter_value snap'
               "test.labeled{coffer=3,op=append}"))

(* ---- causal op tracing (tentpole) --------------------------------------- *)

let test_op_ids_parent_child () =
  with_obs (fun () ->
      Sim.run_thread (fun () ->
          Obs.with_syscall "probe" (fun () ->
              Alcotest.(check bool) "op-id assigned" true (Obs.current_op () > 0);
              Obs.with_kernel_crossing (fun () -> Sim.advance 5);
              Sim.advance 1));
      let spans = Obs.Trace.spans () in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let find cat =
        match List.find_opt (fun s -> s.Obs.Trace.sp_cat = cat) spans with
        | Some s -> s
        | None -> Alcotest.failf "no %s span" cat
      in
      let sys = find "syscall" and trap = find "kernfs" in
      Alcotest.(check bool) "shared op-id" true
        (sys.Obs.Trace.sp_op > 0 && sys.Obs.Trace.sp_op = trap.Obs.Trace.sp_op);
      Alcotest.(check int) "trap parented on syscall" sys.Obs.Trace.sp_id
        trap.Obs.Trace.sp_parent;
      Alcotest.(check int) "syscall is the root" 0 sys.Obs.Trace.sp_parent;
      (* spans_of_op returns the whole connected trace of that op *)
      Alcotest.(check int) "spans_of_op complete" 2
        (List.length (Obs.Trace.spans_of_op sys.Obs.Trace.sp_op));
      (* and the Chrome export carries op/span/parent in args *)
      match J.member "traceEvents" (Obs.Trace.to_json ()) with
      | Some (J.Arr evs) ->
          List.iter
            (fun ev ->
              match J.member "args" ev with
              | Some args -> (
                  match (J.member "op" args, J.member "span" args) with
                  | Some (J.Num op), Some (J.Num _) ->
                      Alcotest.(check bool) "args.op positive" true (op > 0.)
                  | _ -> Alcotest.fail "span args incomplete")
              | None -> Alcotest.fail "span without args")
            evs
      | _ -> Alcotest.fail "no traceEvents")

(* ---- flight recorder (tentpole) ----------------------------------------- *)

let test_flight_ring_and_reset () =
  with_obs (fun () ->
      Obs.Flight.set_capacity 2;
      Fun.protect
        ~finally:(fun () -> Obs.Flight.set_capacity 2048)
        (fun () ->
          Obs.Flight.note "one" [];
          Obs.Flight.note "two" [ ("k", "v") ];
          Obs.Flight.note "three" [];
          Alcotest.(check int) "ring bounded" 2 (Obs.Flight.recorded ());
          Alcotest.(check int) "total counts drops" 3 (Obs.Flight.total ());
          (match Obs.Flight.events () with
          | [ a; b ] ->
              Alcotest.(check string) "oldest evicted" "two" a.Obs.Flight.e_kind;
              Alcotest.(check string) "latest kept" "three" b.Obs.Flight.e_kind;
              Alcotest.(check bool) "seqs increase" true
                (b.Obs.Flight.e_seq > a.Obs.Flight.e_seq);
              Alcotest.(check (list (pair string string)))
                "fields kept"
                [ ("k", "v") ]
                a.Obs.Flight.e_fields
          | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
          Obs.Flight.health_transition ~coffer:5 ~from_:"healthy"
            ~to_:"suspect";
          Alcotest.(check int) "history recorded" 1
            (List.length (Obs.Flight.health_history ~coffer:5));
          (* satellite: reset clears the ring AND the health histories *)
          Obs.reset ();
          Alcotest.(check int) "reset clears ring" 0 (Obs.Flight.recorded ());
          Alcotest.(check int) "reset clears total" 0 (Obs.Flight.total ());
          Alcotest.(check int) "reset clears history" 0
            (List.length (Obs.Flight.health_history ~coffer:5))))

let with_temp_dir f =
  let dir = Filename.temp_file "zofs-flight" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_flight_autodump_on_health_transition () =
  with_temp_dir (fun dir ->
      with_obs (fun () ->
          Obs.Flight.set_autodump ~dir ~max_dumps:4 true;
          Fun.protect
            ~finally:(fun () -> Obs.Flight.set_autodump false)
            (fun () ->
              Sim.run_thread (fun () ->
                  Obs.with_syscall "probe" (fun () ->
                      Sim.advance 10;
                      Obs.Flight.health_transition ~coffer:9 ~from_:"healthy"
                        ~to_:"suspect"));
              let path =
                match Obs.Flight.last_dump_path () with
                | Some p -> p
                | None -> Alcotest.fail "no dump written"
              in
              Alcotest.(check bool) "dump in requested dir" true
                (Filename.dirname path = dir);
              let j =
                match
                  J.of_string (In_channel.with_open_bin path In_channel.input_all)
                with
                | Ok j -> j
                | Error e -> Alcotest.failf "dump unparsable: %s" e
              in
              (match J.member "coffer" j with
              | Some (J.Num 9.) -> ()
              | _ -> Alcotest.fail "dump does not name the coffer");
              (match J.member "health_history" j with
              | Some (J.Obj [ ("9", J.Arr (_ :: _)) ]) -> ()
              | _ -> Alcotest.fail "dump lacks the coffer's health history");
              (match J.member "events" j with
              | Some (J.Arr (_ :: _)) -> ()
              | _ -> Alcotest.fail "dump lacks flight events");
              (* the in-flight op's spans are in the dump, marked open *)
              (match J.member "op_trace" j with
              | Some t -> (
                  match J.member "traceEvents" t with
                  | Some (J.Arr evs) ->
                      Alcotest.(check bool) "open syscall span captured" true
                        (List.exists
                           (fun ev ->
                             match J.member "args" ev with
                             | Some args -> J.member "open" args = Some (J.Bool true)
                             | None -> false)
                           evs)
                  | _ -> Alcotest.fail "op_trace lacks traceEvents")
              | None -> Alcotest.fail "dump lacks op_trace");
              (* rate-limited: the same (coffer, state) pair dumps once *)
              Obs.Flight.health_transition ~coffer:9 ~from_:"healthy"
                ~to_:"suspect";
              Alcotest.(check int) "same transition not re-dumped" 1
                (List.length (Obs.Flight.dump_paths ()));
              Obs.Flight.health_transition ~coffer:9 ~from_:"suspect"
                ~to_:"quarantined";
              Alcotest.(check int) "worse transition dumps again" 2
                (List.length (Obs.Flight.dump_paths ()));
              (* satellite: reset clears ring state but keeps dump paths *)
              Obs.reset ();
              Alcotest.(check int) "dump paths survive reset" 2
                (List.length (Obs.Flight.dump_paths ())))))

let test_flight_dump_on_invariant_failure () =
  with_temp_dir (fun dir ->
      with_obs (fun () ->
          Obs.Flight.set_autodump ~dir true;
          Fun.protect
            ~finally:(fun () -> Obs.Flight.set_autodump false)
            (fun () ->
              Obs.Flight.note "context" [ ("k", "v") ];
              Obs.Flight.invariant_failure "canary unavailable";
              match Obs.Flight.last_dump_path () with
              | None -> Alcotest.fail "invariant failure did not dump"
              | Some p -> (
                  let j =
                    match
                      J.of_string
                        (In_channel.with_open_bin p In_channel.input_all)
                    with
                    | Ok j -> j
                    | Error e -> Alcotest.failf "dump unparsable: %s" e
                  in
                  match J.member "reason" j with
                  | Some (J.Str r) ->
                      Alcotest.(check bool) "reason carries the message" true
                        (contains r "canary unavailable")
                  | _ -> Alcotest.fail "dump lacks reason"))))

(* ---- SLOs (tentpole) ----------------------------------------------------- *)

let test_slo_evaluate_publish_ledger () =
  with_obs (fun () ->
      Obs.Slo.define ~name:"probe-p99" ~op:"probe" ~p99_target_ns:100;
      Fun.protect ~finally:Obs.Slo.clear_definitions (fun () ->
          Sim.run_thread (fun () ->
              Obs.set_tenant 3;
              for _ = 1 to 100 do
                Obs.with_syscall "probe" (fun () -> Sim.advance 150)
              done);
          let snap = Obs.Snapshot.take () in
          (match Obs.Slo.evaluate snap with
          | [ r ] ->
              Alcotest.(check string) "slo name" "probe-p99" r.Obs.Slo.s_name;
              Alcotest.(check string) "tenant" "3" r.Obs.Slo.s_tenant;
              Alcotest.(check int) "samples" 100 r.Obs.Slo.s_count;
              Alcotest.(check int) "all over target" 100 r.Obs.Slo.s_over;
              Alcotest.(check bool) "p99 above target" true
                (r.Obs.Slo.s_p99 > 100);
              (* 100 over / (1% of 100) = 100x the error budget *)
              Alcotest.(check bool) "burn 100x" true
                (abs_float (r.Obs.Slo.s_burn -. 100.) < 1e-9)
          | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs));
          let reports = Obs.Slo.publish snap in
          Alcotest.(check bool) "rendered table flags violation" true
            (contains (Obs.Slo.render reports) "VIOLATED");
          Alcotest.(check bool) "ledger burn accumulated" true
            (Obs.Slo.ledger_burn ~name:"probe-p99" ~tenant:"3" > 1.0);
          (* published gauges surface in the labelled top-k view *)
          let snap = Obs.Snapshot.take () in
          Alcotest.(check bool) "burn in top-k render" true
            (contains
               (Obs.Snapshot.render_top snap)
               "top tenants by SLO error-budget burn");
          (* satellite: reset clears the ledger but keeps the definition *)
          Obs.reset ();
          Alcotest.(check (float 1e-9)) "reset clears ledger" 0.0
            (Obs.Slo.ledger_burn ~name:"probe-p99" ~tenant:"3");
          Alcotest.(check int) "definition survives reset" 1
            (List.length (Obs.Slo.definitions ()))))

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single sample" `Quick test_hist_single;
          Alcotest.test_case "negative clamped" `Quick
            test_hist_negative_clamped;
          Alcotest.test_case "bucket boundaries" `Quick
            test_hist_bucket_boundaries;
          Alcotest.test_case "merge associative" `Quick
            test_hist_merge_associative;
        ] );
      ( "registry",
        [
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "snapshot diff + round-trip" `Quick
            test_snapshot_diff_and_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parse;
          Alcotest.test_case "json string escapes" `Quick
            test_json_string_escapes;
          Alcotest.test_case "json nested round-trip" `Quick
            test_json_nested_roundtrip;
          Alcotest.test_case "json malformed rejected" `Quick
            test_json_malformed;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "bucket edges" `Quick
            test_hist_percentile_bucket_edges;
          Alcotest.test_case "after merge + count_over" `Quick
            test_hist_percentile_after_merge;
        ] );
      ( "labels",
        [
          Alcotest.test_case "canonical + series" `Quick
            test_labels_canonical_and_series;
          Alcotest.test_case "invalid rejected" `Quick test_labels_invalid;
          Alcotest.test_case "labelled series in snapshot" `Quick
            test_labeled_series_in_snapshot;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "op-ids + parent/child links" `Quick
            test_op_ids_parent_child;
        ] );
      ( "flight",
        [
          Alcotest.test_case "bounded ring + reset" `Quick
            test_flight_ring_and_reset;
          Alcotest.test_case "autodump on health transition" `Quick
            test_flight_autodump_on_health_transition;
          Alcotest.test_case "dump on invariant failure" `Quick
            test_flight_dump_on_invariant_failure;
        ] );
      ( "slo",
        [
          Alcotest.test_case "evaluate + publish + ledger" `Quick
            test_slo_evaluate_publish_ledger;
        ] );
      ( "subscribers",
        [
          Alcotest.test_case "device: both fire" `Quick
            test_device_subscribers_both_fire;
          Alcotest.test_case "device: legacy hook slot" `Quick
            test_device_legacy_hook_slot;
          Alcotest.test_case "mpk: both fire" `Quick
            test_mpk_subscribers_both_fire;
          Alcotest.test_case "check + obs compose" `Quick
            test_check_and_obs_compose;
        ] );
      ( "lease",
        [
          Alcotest.test_case "uncontended: 0 retries" `Quick
            test_uncontended_acquire_zero_retries;
          Alcotest.test_case "contended: retries counted" `Quick
            test_contended_acquire_counts_retries;
        ] );
      ( "spans",
        [
          Alcotest.test_case "balanced + valid trace" `Quick
            test_spans_balanced_and_trace_valid;
          Alcotest.test_case "ring drops" `Quick test_span_ring_drops;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
        ] );
      ( "layers",
        [
          Alcotest.test_case "with_syscall histogram" `Quick
            test_with_syscall_histogram_and_layers;
          Alcotest.test_case "end-to-end layer split" `Quick
            test_layer_split_end_to_end;
          Alcotest.test_case "obs costs no sim time" `Quick
            test_obs_costs_no_sim_time;
        ] );
    ]
