(* Tests for the MPK / page-table protection layer. *)

module D = Nvm.Device

let mk () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(64 * Nvm.page_size) () in
  (dev, Mpk.create dev)

let fault_reason f =
  match f () with
  | _ -> None
  | exception Nvm.Fault { reason; _ } -> Some reason

let in_proc ?(uid = 1000) f =
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  Sim.run_thread ~proc (fun () -> f proc)

let test_unmapped_faults () =
  let dev, _mpk = mk () in
  in_proc (fun _ ->
      Alcotest.(check (option string))
        "unmapped read" (Some "page not mapped")
        (fault_reason (fun () -> D.read_u64 dev 0)))

let test_mapped_rw_ok () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:true ~pkey:0;
      D.write_u64 dev 0 5;
      Alcotest.(check int) "rw access" 5 (D.read_u64 dev 0))

let test_readonly_mapping () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:false ~pkey:0;
      ignore (D.read_u64 dev 0);
      Alcotest.(check (option string))
        "ro write" (Some "page mapped read-only")
        (fault_reason (fun () -> D.write_u64 dev 0 1)))

let test_pkey_disabled_by_default () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:true ~pkey:3;
      Alcotest.(check (option string))
        "pkey region closed" (Some "MPK: region 3 access-disabled")
        (fault_reason (fun () -> D.read_u64 dev 0)))

let test_wrpkru_opens_region () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:true ~pkey:3;
      Mpk.wrpkru mpk [ (3, Mpk.Pk_read_write) ];
      D.write_u64 dev 0 9;
      Alcotest.(check int) "open region" 9 (D.read_u64 dev 0))

let test_read_only_pkey () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:true ~pkey:5;
      Mpk.wrpkru mpk [ (5, Mpk.Pk_read) ];
      ignore (D.read_u64 dev 0);
      Alcotest.(check (option string))
        "write disabled" (Some "MPK: region 5 write-disabled")
        (fault_reason (fun () -> D.write_u64 dev 0 1)))

let test_with_keys_restores () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:0 ~writable:true ~pkey:3;
      Mpk.with_keys mpk [ (3, Mpk.Pk_read_write) ] (fun () ->
          D.write_u64 dev 0 1);
      Alcotest.(check (option string))
        "closed again" (Some "MPK: region 3 access-disabled")
        (fault_reason (fun () -> D.read_u64 dev 0)))

let test_with_keys_exclusive () =
  (* G2: opening one coffer's region must leave others closed. *)
  let dev, mpk = mk () in
  in_proc (fun p ->
      let pid = p.Sim.Proc.pid in
      Mpk.map_page mpk ~pid ~page:0 ~writable:true ~pkey:1;
      Mpk.map_page mpk ~pid ~page:1 ~writable:true ~pkey:2;
      Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write); (2, Mpk.Pk_read_write) ];
      Mpk.with_keys mpk [ (1, Mpk.Pk_read_write) ] (fun () ->
          ignore (D.read_u64 dev 0);
          Alcotest.(check (option string))
            "other coffer closed" (Some "MPK: region 2 access-disabled")
            (fault_reason (fun () -> D.read_u64 dev Nvm.page_size))))

let test_per_thread_pkru () =
  (* A region opened in one thread stays closed in a concurrent thread
     (stray writes in other threads cannot use the window, §3.4.1). *)
  let dev, mpk = mk () in
  let proc = Sim.Proc.create ~uid:1000 ~gid:1000 () in
  let w = Sim.create () in
  let other_thread_fault = ref None in
  Sim.spawn w ~proc ~name:"opener" (fun () ->
      Mpk.map_page mpk ~pid:proc.Sim.Proc.pid ~page:0 ~writable:true ~pkey:4;
      Mpk.wrpkru mpk [ (4, Mpk.Pk_read_write) ];
      D.write_u64 dev 0 1;
      Sim.advance 1000);
  Sim.spawn w ~proc ~at:500 ~name:"stray" (fun () ->
      other_thread_fault := fault_reason (fun () -> D.write_u64 dev 8 666));
  Sim.run w;
  Alcotest.(check (option string))
    "stray thread blocked"
    (Some "MPK: region 4 access-disabled")
    !other_thread_fault;
  (* The opener's write landed; the stray write did not (read back from
     kernel mode, which bypasses the user page tables). *)
  Mpk.with_kernel mpk (fun () ->
      Alcotest.(check int) "good write" 1 (D.read_u64 dev 0);
      Alcotest.(check int) "stray write blocked" 0 (D.read_u64 dev 8))

let test_per_process_page_tables () =
  let dev, mpk = mk () in
  let p1 = Sim.Proc.create ~uid:1 ~gid:1 () in
  let p2 = Sim.Proc.create ~uid:2 ~gid:2 () in
  Mpk.map_page mpk ~pid:p1.Sim.Proc.pid ~page:0 ~writable:true ~pkey:0;
  let r1 = Sim.run_thread ~proc:p1 (fun () -> fault_reason (fun () -> D.read_u64 dev 0)) in
  let r2 = Sim.run_thread ~proc:p2 (fun () -> fault_reason (fun () -> D.read_u64 dev 0)) in
  Alcotest.(check (option string)) "p1 sees page" None r1;
  Alcotest.(check (option string)) "p2 does not" (Some "page not mapped") r2

let test_cross_process_readonly_blocks_write () =
  (* Process A maps a page writable; process B maps the same physical page
     read-only.  Even with B's PKRU wide open for the region, B's write must
     fault on B's own PTE — A's writable mapping lends B nothing. *)
  let dev, mpk = mk () in
  let pa = Sim.Proc.create ~uid:1 ~gid:1 () in
  let pb = Sim.Proc.create ~uid:2 ~gid:2 () in
  Mpk.map_page mpk ~pid:pa.Sim.Proc.pid ~page:0 ~writable:true ~pkey:3;
  Mpk.map_page mpk ~pid:pb.Sim.Proc.pid ~page:0 ~writable:false ~pkey:3;
  Sim.run_thread ~proc:pa (fun () ->
      Mpk.wrpkru mpk [ (3, Mpk.Pk_read_write) ];
      D.write_u64 dev 0 42);
  let rb =
    Sim.run_thread ~proc:pb (fun () ->
        Mpk.wrpkru mpk [ (3, Mpk.Pk_read_write) ];
        Alcotest.(check int) "B reads A's write" 42 (D.read_u64 dev 0);
        fault_reason (fun () -> D.write_u64 dev 0 666))
  in
  Alcotest.(check (option string))
    "B write blocked by its own read-only PTE"
    (Some "page mapped read-only") rb;
  Mpk.with_kernel mpk (fun () ->
      Alcotest.(check int) "A's value intact" 42 (D.read_u64 dev 0))

let test_cross_process_unmapped_blocks_all () =
  (* Process B with no mapping at all cannot even read what A maps rw. *)
  let dev, mpk = mk () in
  let pa = Sim.Proc.create ~uid:1 ~gid:1 () in
  let pb = Sim.Proc.create ~uid:2 ~gid:2 () in
  Mpk.map_page mpk ~pid:pa.Sim.Proc.pid ~page:0 ~writable:true ~pkey:1;
  Sim.run_thread ~proc:pa (fun () ->
      Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write) ];
      D.write_u64 dev 0 7);
  let rb =
    Sim.run_thread ~proc:pb (fun () ->
        Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write) ];
        fault_reason (fun () -> D.read_u64 dev 0))
  in
  Alcotest.(check (option string))
    "unmapped process blocked" (Some "page not mapped") rb

let test_pkru_no_leak_across_process_switch () =
  (* Same simulated core, process switch: a thread of process B scheduled
     after process A's thread opened region 5 must start from the
     all-disabled PKRU default, not inherit A's register image. *)
  let dev, mpk = mk () in
  let pa = Sim.Proc.create ~uid:1 ~gid:1 () in
  let pb = Sim.Proc.create ~uid:2 ~gid:2 () in
  Mpk.map_page mpk ~pid:pa.Sim.Proc.pid ~page:0 ~writable:true ~pkey:5;
  Mpk.map_page mpk ~pid:pb.Sim.Proc.pid ~page:0 ~writable:true ~pkey:5;
  let w = Sim.create () in
  let b_fault = ref None and b_pkru = ref [ (1, Mpk.Pk_read) ] in
  Sim.spawn w ~proc:pa ~name:"a" (fun () ->
      Mpk.wrpkru mpk [ (5, Mpk.Pk_read_write) ];
      D.write_u64 dev 0 1;
      Sim.advance 100);
  Sim.spawn w ~proc:pb ~at:50 ~name:"b" (fun () ->
      b_pkru := Mpk.rdpkru mpk;
      b_fault := fault_reason (fun () -> D.read_u64 dev 0));
  Sim.run w;
  Alcotest.(check bool) "B starts all-disabled" true (!b_pkru = []);
  Alcotest.(check (option string))
    "B blocked despite A's open window"
    (Some "MPK: region 5 access-disabled") !b_fault

let test_drop_process_clears_context () =
  (* Killing + reaping a process must leave no protection residue: page
     table gone, per-thread PKRU/kernel-mode state gone. *)
  let dev, mpk = mk () in
  let p = Sim.Proc.create ~uid:9 ~gid:9 () in
  let pid = p.Sim.Proc.pid in
  Mpk.map_page mpk ~pid ~page:0 ~writable:true ~pkey:2;
  let tid =
    ref (-1)
  in
  let w = Sim.create () in
  tid :=
    Sim.spawn_tid w ~proc:p ~name:"victim" (fun () ->
        Mpk.wrpkru mpk [ (2, Mpk.Pk_read_write) ];
        D.write_u64 dev 0 3);
  Sim.run w;
  Alcotest.(check bool) "table present" true (Mpk.has_table mpk ~pid);
  Alcotest.(check bool) "thread state present" true
    (Mpk.has_thread_state mpk ~tid:!tid);
  Mpk.drop_process mpk ~pid ~tids:[ !tid ];
  Alcotest.(check bool) "table dropped" false (Mpk.has_table mpk ~pid);
  Alcotest.(check bool) "thread state dropped" false
    (Mpk.has_thread_state mpk ~tid:!tid);
  (* A process reusing the pid slot starts from nothing mapped. *)
  let r =
    Sim.run_thread ~proc:p (fun () -> fault_reason (fun () -> D.read_u64 dev 0))
  in
  Alcotest.(check (option string)) "nothing mapped" (Some "page not mapped") r

let test_unmap () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      let pid = p.Sim.Proc.pid in
      Mpk.map_page mpk ~pid ~page:0 ~writable:true ~pkey:0;
      ignore (D.read_u64 dev 0);
      Mpk.unmap_page mpk ~pid ~page:0;
      Alcotest.(check (option string))
        "unmapped" (Some "page not mapped")
        (fault_reason (fun () -> D.read_u64 dev 0)))

let test_unmap_all () =
  let dev, mpk = mk () in
  in_proc (fun p ->
      let pid = p.Sim.Proc.pid in
      for page = 0 to 9 do
        Mpk.map_page mpk ~pid ~page ~writable:true ~pkey:0
      done;
      Mpk.unmap_all mpk ~pid;
      Alcotest.(check (option string))
        "all unmapped" (Some "page not mapped")
        (fault_reason (fun () -> D.read_u64 dev (5 * Nvm.page_size))))

let test_kernel_mode_read () =
  let dev, mpk = mk () in
  in_proc (fun _ ->
      (* Kernel can read unmapped-for-user pages... *)
      Mpk.with_kernel mpk (fun () -> ignore (D.read_u64 dev 0));
      (* ...but writes need a write window (CR0.WP, as in PMFS). *)
      Alcotest.(check (option string))
        "kernel write blocked"
        (Some "kernel write outside CR0.WP write window")
        (fault_reason (fun () ->
             Mpk.with_kernel mpk (fun () -> D.write_u64 dev 0 1))))

let test_write_window () =
  let dev, mpk = mk () in
  in_proc (fun _ ->
      Mpk.with_kernel mpk (fun () ->
          Mpk.with_write_window mpk (fun () -> D.write_u64 dev 0 77));
      Alcotest.(check int) "written in window"
        77
        (Mpk.with_kernel mpk (fun () -> D.read_u64 dev 0)))

let test_write_window_requires_kernel () =
  let _dev, mpk = mk () in
  in_proc (fun _ ->
      Alcotest.check_raises "user mode"
        (Invalid_argument "Mpk.with_write_window: not in kernel mode")
        (fun () -> Mpk.with_write_window mpk (fun () -> ())))

let test_fault_count () =
  let dev, mpk = mk () in
  in_proc (fun _ ->
      ignore (fault_reason (fun () -> D.read_u64 dev 0));
      ignore (fault_reason (fun () -> D.write_u64 dev 0 1));
      Alcotest.(check int) "two faults" 2 (Mpk.fault_count mpk))

let test_rdpkru () =
  let _dev, mpk = mk () in
  in_proc (fun _ ->
      Mpk.wrpkru mpk [ (2, Mpk.Pk_read); (7, Mpk.Pk_read_write) ];
      Alcotest.(check bool)
        "pkru reflects wrpkru" true
        (Mpk.rdpkru mpk = [ (2, Mpk.Pk_read); (7, Mpk.Pk_read_write) ]))

let test_rdpkru_interleaved_threads () =
  (* rdpkru must round-trip each thread's own register even when wrpkru
     calls from two threads of the same process interleave in time. *)
  let _dev, mpk = mk () in
  let proc = Sim.Proc.create ~uid:1000 ~gid:1000 () in
  let w = Sim.create () in
  let a = ref [] and b = ref [] in
  Sim.spawn w ~proc ~name:"t1" (fun () ->
      Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write) ];
      Sim.advance 100;
      (* t2's wrpkru has happened in between *)
      Mpk.wrpkru mpk [ (1, Mpk.Pk_read) ];
      a := Mpk.rdpkru mpk);
  Sim.spawn w ~proc ~at:50 ~name:"t2" (fun () ->
      Mpk.wrpkru mpk [ (2, Mpk.Pk_read_write) ];
      Sim.advance 100;
      b := Mpk.rdpkru mpk);
  Sim.run w;
  Alcotest.(check bool) "t1 sees only its own writes" true
    (!a = [ (1, Mpk.Pk_read) ]);
  Alcotest.(check bool) "t2 sees only its own writes" true
    (!b = [ (2, Mpk.Pk_read_write) ])

let test_pkey_range_checked () =
  let _dev, mpk = mk () in
  in_proc (fun _ ->
      Alcotest.check_raises "pkey 16"
        (Invalid_argument "Mpk: pkey out of range") (fun () ->
          Mpk.wrpkru mpk [ (16, Mpk.Pk_read) ]))

let test_page_pkey_query () =
  let _dev, mpk = mk () in
  let p = Sim.Proc.create () in
  let pid = p.Sim.Proc.pid in
  Alcotest.(check (option int)) "unmapped" None (Mpk.page_pkey mpk ~pid ~page:3);
  Mpk.map_page mpk ~pid ~page:3 ~writable:true ~pkey:9;
  Alcotest.(check (option int)) "mapped" (Some 9) (Mpk.page_pkey mpk ~pid ~page:3);
  Alcotest.(check bool) "is_mapped" true (Mpk.is_mapped mpk ~pid ~page:3)

let test_wrpkru_cost () =
  let _dev, mpk = mk () in
  let t =
    Sim.run_thread (fun () ->
        Mpk.wrpkru mpk [ (1, Mpk.Pk_read_write) ];
        Sim.now ())
  in
  Alcotest.(check int) "~16 cycles" 6 t

let () =
  Alcotest.run "mpk"
    [
      ( "paging",
        [
          Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
          Alcotest.test_case "mapped rw" `Quick test_mapped_rw_ok;
          Alcotest.test_case "read-only mapping" `Quick test_readonly_mapping;
          Alcotest.test_case "per-process tables" `Quick test_per_process_page_tables;
          Alcotest.test_case "cross-process read-only blocks write" `Quick
            test_cross_process_readonly_blocks_write;
          Alcotest.test_case "cross-process unmapped blocks all" `Quick
            test_cross_process_unmapped_blocks_all;
          Alcotest.test_case "PKRU no-leak across process switch" `Quick
            test_pkru_no_leak_across_process_switch;
          Alcotest.test_case "drop_process clears context" `Quick
            test_drop_process_clears_context;
          Alcotest.test_case "unmap" `Quick test_unmap;
          Alcotest.test_case "unmap_all" `Quick test_unmap_all;
          Alcotest.test_case "page_pkey query" `Quick test_page_pkey_query;
        ] );
      ( "mpk",
        [
          Alcotest.test_case "pkey closed by default" `Quick
            test_pkey_disabled_by_default;
          Alcotest.test_case "wrpkru opens" `Quick test_wrpkru_opens_region;
          Alcotest.test_case "read-only pkey" `Quick test_read_only_pkey;
          Alcotest.test_case "with_keys restores" `Quick test_with_keys_restores;
          Alcotest.test_case "with_keys exclusive (G2)" `Quick
            test_with_keys_exclusive;
          Alcotest.test_case "per-thread PKRU" `Quick test_per_thread_pkru;
          Alcotest.test_case "rdpkru" `Quick test_rdpkru;
          Alcotest.test_case "rdpkru interleaved threads" `Quick
            test_rdpkru_interleaved_threads;
          Alcotest.test_case "pkey range" `Quick test_pkey_range_checked;
          Alcotest.test_case "wrpkru cost" `Quick test_wrpkru_cost;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "kernel read ok, write blocked" `Quick
            test_kernel_mode_read;
          Alcotest.test_case "write window" `Quick test_write_window;
          Alcotest.test_case "window needs kernel" `Quick
            test_write_window_requires_kernel;
          Alcotest.test_case "fault count" `Quick test_fault_count;
        ] );
    ]
