(* The serving plane's sharp edges, pinned deterministically under the
   simulated clock:

   - deadline edges in lease acquisition: a deadline expiring while a
     steal is in flight, a deadline shorter than a single backoff step,
     and the zero-budget try-once degradation
   - the shared backoff helper: deterministic jitter, capped steps,
     deadline-aware waits
   - ambient deadline plumbing: nesting can only shrink the budget
   - the server itself: quota sheds, bounded queues, and a late success
     reported as the timeout it is to the client *)

module D = Nvm.Device
module E = Treasury.Errno
module Bk = Treasury.Backoff
module Dl = Treasury.Deadline
module Serve = Serving.Serve

let obs_on () = if not (Obs.enabled ()) then Obs.enable ~spans:false ()

let counter_delta snap0 name =
  let d = Obs.Snapshot.diff snap0 (Obs.Snapshot.take ()) in
  Option.value ~default:0 (Obs.Snapshot.counter_value d name)

let in_world ~seed f =
  let w = Sim.create ~seed () in
  let done_ = ref false in
  Sim.spawn w ~name:"t" (fun () ->
      f w;
      done_ := true);
  Sim.run w;
  Alcotest.(check bool) "test thread finished" true !done_

(* ---- deadline edges in lease acquisition -------------------------------- *)

(* Zero budget degrades to try-once: an uncontended lease still costs only
   one CAS, so a deadline already in the past must not fail it. *)
let test_zero_deadline_uncontended () =
  obs_on ();
  in_world ~seed:31L (fun _w ->
      let dev = D.create ~perf:Nvm.Perf.free ~size:Nvm.page_size () in
      Sim.advance 1_000;
      Zofs.Lease.acquire ~deadline:(Sim.now () - 500) dev 512;
      Alcotest.(check bool) "lease taken" true (D.read_u64 dev 512 <> 0))

(* ... but against a validly held lease, the single attempt fails and the
   give-up is immediate: no backoff is paid past the (long-gone) deadline. *)
let test_zero_deadline_contended () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  in_world ~seed:32L (fun w ->
      let dev = D.create ~perf:Nvm.Perf.free ~size:Nvm.page_size () in
      let held = ref false in
      Sim.spawn w ~name:"holder" (fun () ->
          Zofs.Lease.acquire ~duration:1_000_000 dev 512;
          held := true);
      while not !held do
        Sim.advance 100
      done;
      let t0 = Sim.now () in
      (match Zofs.Lease.acquire ~deadline:(t0 - 1) dev 512 with
      | () -> Alcotest.fail "acquired a held lease on zero budget"
      | exception Dl.Expired _ -> ());
      Alcotest.(check bool) "gave up without paying backoff" true
        (Sim.now () - t0 < Zofs.Lease.backoff_base));
  Alcotest.(check bool) "abort counted" true
    (counter_delta snap0 "lease.aborts" >= 1)

(* A deadline shorter than one backoff step: the wait is clamped to the
   deadline (never sleeps past it), one final attempt runs, and the
   expiry raises at — not beyond — the budget's edge. *)
let test_deadline_shorter_than_backoff () =
  obs_on ();
  in_world ~seed:33L (fun w ->
      let dev = D.create ~perf:Nvm.Perf.free ~size:Nvm.page_size () in
      let held = ref false in
      Sim.spawn w ~name:"holder" (fun () ->
          Zofs.Lease.acquire ~duration:1_000_000 dev 512;
          held := true);
      while not !held do
        Sim.advance 100
      done;
      let budget = Zofs.Lease.backoff_base / 4 in
      let d = Sim.now () + budget in
      (match Zofs.Lease.acquire ~deadline:d dev 512 with
      | () -> Alcotest.fail "acquired a held lease inside a tiny budget"
      | exception Dl.Expired { deadline; now } ->
          Alcotest.(check int) "raised with the caller's deadline" d deadline;
          Alcotest.(check bool) "no sleep past the deadline" true
            (now - d <= Zofs.Lease.clock_gettime_cost + 1)))

(* Deadline expiring while a steal is in flight: the holder is killed, its
   lease has not yet expired, and the waiter's budget runs out mid-camp.
   The waiter must abort at its deadline; a second waiter with budget past
   the lease expiry completes the steal. *)
let test_deadline_while_steal_in_flight () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  in_world ~seed:34L (fun w ->
      let dev = D.create ~perf:Nvm.Perf.free ~size:Nvm.page_size () in
      let tid =
        Sim.spawn_tid w ~name:"doomed-holder" (fun () ->
            Zofs.Lease.acquire ~duration:100_000 dev 512;
            (* hold forever: the kill below reclaims the thread without
               unwinding, so the lease word stays owned until it expires *)
            while true do
              Sim.advance 1_000
            done)
      in
      while D.read_u64 dev 512 = 0 do
        Sim.advance 100
      done;
      Sim.arm_kill ~tid ~after:1;
      Sim.advance 5_000;
      Alcotest.(check bool) "holder is dead" false (Sim.thread_alive tid);
      Alcotest.(check bool) "lease still held" true (D.read_u64 dev 512 <> 0);
      (* waiter 1: budget dies before the dead holder's lease does *)
      let d1 = Sim.now () + 20_000 in
      (match Zofs.Lease.acquire ~deadline:d1 dev 512 with
      | () -> Alcotest.fail "stole a lease that had not expired"
      | exception Dl.Expired _ ->
          Alcotest.(check bool) "aborted at its own deadline" true
            (Sim.now () >= d1 && Sim.now () < d1 + 1_000));
      (* waiter 2: budget outlives the lease — the steal lands *)
      Zofs.Lease.acquire ~deadline:(Sim.now () + 200_000) dev 512;
      Alcotest.(check int) "stealer owns the word" (Sim.self_tid () + 2)
        (D.read_u64 dev 512 land 0xFFFF));
  Alcotest.(check bool) "one abort, one steal" true
    (counter_delta snap0 "lease.aborts" >= 1
    && counter_delta snap0 "lease.steals" >= 1)

(* ---- the shared backoff helper ------------------------------------------ *)

let test_backoff_deterministic_and_capped () =
  in_world ~seed:35L (fun _w ->
      let seq salt =
        let b = Bk.create ~base:200 ~cap:6_400 ~salt () in
        List.init 12 (fun _ ->
            let d = Bk.next_delay b in
            ignore (Bk.wait b);
            d)
      in
      let a = seq 7 in
      List.iter
        (fun d ->
          Alcotest.(check bool) "positive" true (d >= 1);
          (* cap + max positive jitter (span/2 = cap/4) *)
          Alcotest.(check bool) "capped" true (d <= 6_400 + 1_600))
        a;
      (* the tail must sit at the cap, not keep doubling *)
      let tail = List.nth a 11 in
      Alcotest.(check bool) "tail near cap" true (tail >= 6_400 - 1_600))

let test_backoff_wait_until_clamps () =
  in_world ~seed:36L (fun _w ->
      let b = Bk.create ~base:1_000 ~cap:8_000 ~salt:1 () in
      let d = Sim.now () + 2_500 in
      (* keep waiting: each sleep is clamped, and the helper reports the
         deadline's arrival instead of sleeping past it *)
      let rec drain n = if Bk.wait_until b ~deadline:d then drain (n + 1) else n in
      let waits = drain 0 in
      Alcotest.(check bool) "waited at least once" true (waits >= 1);
      Alcotest.(check int) "parked exactly at the deadline" d (Sim.now ());
      Alcotest.(check bool) "false once reached" false
        (Bk.wait_until b ~deadline:d))

(* ---- ambient deadline nesting ------------------------------------------- *)

let test_deadline_nesting_shrinks () =
  in_world ~seed:37L (fun _w ->
      Sim.advance 1_000;
      let outer = Sim.now () + 100 in
      Dl.with_deadline outer (fun () ->
          (* an inner, LARGER deadline must not extend the budget *)
          Dl.with_deadline (Sim.now () + 1_000_000) (fun () ->
              Alcotest.(check (option int)) "outer budget wins" (Some outer)
                (Dl.current ()));
          (* an inner, smaller deadline shrinks it... *)
          let inner = Sim.now () + 10 in
          Dl.with_deadline inner (fun () ->
              Alcotest.(check (option int)) "inner budget wins" (Some inner)
                (Dl.current ()));
          (* ...and is restored on the way out *)
          Alcotest.(check (option int)) "restored" (Some outer) (Dl.current ()));
      Alcotest.(check (option int)) "cleared" None (Dl.current ()))

(* ---- the server: sheds and late successes ------------------------------- *)

let test_serve_quota_shed () =
  obs_on ();
  in_world ~seed:38L (fun _w ->
      let srv = Serve.create ~max_inflight:4 () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:1 ~burst:1
        ~queue_cap:8 ();
      (match Serve.submit srv ~tenant_id:0 (fun () -> Ok ()) with
      | Serve.Done (Ok ()) -> ()
      | _ -> Alcotest.fail "first request inside burst must pass");
      (match Serve.submit srv ~tenant_id:0 (fun () -> Ok ()) with
      | Serve.Shed { reason = Serve.Quota; retry_after } ->
          Alcotest.(check bool) "honest retry_after" true (retry_after > 0);
          (* the quoted wait is sufficient: after it, the bucket has the
             token back *)
          Sim.advance retry_after;
          (match Serve.submit srv ~tenant_id:0 (fun () -> Ok ()) with
          | Serve.Done (Ok ()) -> ()
          | _ -> Alcotest.fail "retry after the quoted wait must pass")
      | _ -> Alcotest.fail "second request must shed on quota");
      (* every submission accounted exactly once *)
      let s = List.hd (Serve.tenant_stats srv) in
      Alcotest.(check int) "books balance" s.Serve.ts_submitted
        (Serve.accounted s))

let test_serve_queue_full_shed () =
  obs_on ();
  in_world ~seed:39L (fun w ->
      let srv = Serve.create ~max_inflight:1 () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:1_000 ~burst:100
        ~queue_cap:1 ();
      let outcomes = ref [] in
      for i = 0 to 2 do
        ignore
          (Sim.spawn_tid w
             ~name:(Printf.sprintf "c%d" i)
             ~at:(Sim.now () + (i * 10))
             (fun () ->
               let o =
                 Serve.submit srv ~tenant_id:0 (fun () ->
                     Sim.advance 50_000;
                     Ok ())
               in
               outcomes := o :: !outcomes))
      done;
      Sim.advance 400_000;
      let sheds =
        List.length
          (List.filter
             (function
               | Serve.Shed { reason = Serve.Queue_full; _ } -> true
               | _ -> false)
             !outcomes)
      in
      let okc =
        List.length
          (List.filter
             (function Serve.Done (Ok ()) -> true | _ -> false)
             !outcomes)
      in
      (* one executing, one queued, one shed *)
      Alcotest.(check int) "two served" 2 okc;
      Alcotest.(check int) "one shed on the bounded queue" 1 sheds;
      Alcotest.(check int) "no slot leak" 0 (Serve.inflight srv))

(* A request that finishes its work after its budget is a timeout to the
   client — and an Executing-stage one, so it feeds the degrade window. *)
let test_serve_late_success_is_timeout () =
  obs_on ();
  in_world ~seed:40L (fun _w ->
      let srv = Serve.create ~max_inflight:2 () in
      Serve.add_tenant srv ~id:0 ~weight:1 ~rate_per_ms:1_000 ~burst:10
        ~queue_cap:8 ();
      (match
         Serve.submit srv ~tenant_id:0 ~deadline_ns:100 (fun () ->
             Sim.advance 5_000;
             Ok ())
       with
      | Serve.Timed_out { stage = Serve.Executing } -> ()
      | Serve.Done (Ok ()) -> Alcotest.fail "late success reported as success"
      | _ -> Alcotest.fail "unexpected outcome for a late success");
      let s = List.hd (Serve.tenant_stats srv) in
      Alcotest.(check int) "counted as timed out" 1 s.Serve.ts_timed_out;
      Alcotest.(check int) "books balance" s.Serve.ts_submitted
        (Serve.accounted s))

let () =
  Alcotest.run "serve"
    [
      ( "lease-deadlines",
        [
          Alcotest.test_case "zero budget, uncontended: try-once wins" `Quick
            test_zero_deadline_uncontended;
          Alcotest.test_case "zero budget, contended: immediate abort" `Quick
            test_zero_deadline_contended;
          Alcotest.test_case "budget shorter than one backoff step" `Quick
            test_deadline_shorter_than_backoff;
          Alcotest.test_case "deadline expiring while steal in flight" `Quick
            test_deadline_while_steal_in_flight;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic, jittered, capped" `Quick
            test_backoff_deterministic_and_capped;
          Alcotest.test_case "wait_until clamps at the deadline" `Quick
            test_backoff_wait_until_clamps;
        ] );
      ( "deadline-plumbing",
        [
          Alcotest.test_case "nesting only shrinks the budget" `Quick
            test_deadline_nesting_shrinks;
        ] );
      ( "server",
        [
          Alcotest.test_case "quota shed with honest retry-after" `Quick
            test_serve_quota_shed;
          Alcotest.test_case "bounded queue sheds the overflow" `Quick
            test_serve_queue_full_shed;
          Alcotest.test_case "late success is a timeout" `Quick
            test_serve_late_success_is_timeout;
        ] );
    ]
