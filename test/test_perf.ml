(* Tests for the perf-regression gate (lib/perf): the pinned experiments
   must be deterministic (byte-identical JSON across runs — the property
   that lets BENCH_perf.json be committed and compared exactly), the JSON
   must round-trip, and the trend comparator must fail on a synthetic
   regression while tolerating noise and rewarding improvements. *)

module P = Perf_gate
module J = Obs.Json

(* ---- determinism --------------------------------------------------------- *)

(* Two independent runs of the full pinned set, same process: every counter
   and every simulated nanosecond must match, or the committed-baseline
   scheme breaks down into flaky gates. *)
let test_two_runs_identical () =
  let a = P.run_all ~quick:true () in
  let b = P.run_all ~quick:true () in
  Alcotest.(check string) "byte-identical JSON"
    (J.to_string (P.to_json a))
    (J.to_string (P.to_json b))

(* ---- JSON round trip ------------------------------------------------------ *)

let m0 =
  {
    P.ops = 100;
    sim_ns = 123456;
    flushes = 800;
    redundant_flushes = 10;
    fences = 210;
    redundant_fences = 0;
    crossings = 3;
    enlarge_calls = 2;
  }

let results0 =
  [ { P.r_name = "append"; r_m = m0 }; { P.r_name = "create"; r_m = m0 } ]

let test_json_roundtrip () =
  let s = J.to_string (P.to_json results0) in
  match J.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
      match P.of_json j with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok back ->
          Alcotest.(check bool) "round-trips exactly" true (back = results0))

let test_bad_schema_rejected () =
  match P.of_json (J.Obj [ ("schema", J.Str "zofs-perf-999") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema must be rejected"

(* ---- the trend comparator ------------------------------------------------- *)

let scale f m =
  {
    m with
    P.sim_ns = int_of_float (float_of_int m.P.sim_ns *. f);
    flushes = int_of_float (float_of_int m.P.flushes *. f);
    fences = int_of_float (float_of_int m.P.fences *. f);
  }

let with_m r m = { r with P.r_m = m }

(* +20% on every per-op dimension of one experiment: well past the 10%
   tolerance, the gate must fail — and name the experiment. *)
let test_synthetic_regression_fails () =
  let current =
    [ with_m (List.nth results0 0) (scale 1.20 m0); List.nth results0 1 ]
  in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check bool) "not clean" false (P.clean v);
  Alcotest.(check bool) "regression names the experiment" true
    (List.exists
       (fun s -> String.length s >= 6 && String.sub s 0 6 = "append")
       v.P.regressions)

(* +5% is inside the tolerance: noise, not a regression. *)
let test_noise_within_tolerance_passes () =
  let current = List.map (fun r -> with_m r (scale 1.05 m0)) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check (list string)) "no regressions" [] v.P.regressions

(* -30%: an improvement is reported, never a failure. *)
let test_improvement_reported_not_failed () =
  let current = List.map (fun r -> with_m r (scale 0.70 m0)) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check bool) "clean" true (P.clean v);
  Alcotest.(check bool) "improvements reported" true (v.P.improvements <> [])

(* A baseline experiment the current run no longer produces is a regression
   (a silently dropped experiment must not weaken the gate). *)
let test_missing_experiment_is_regression () =
  let v =
    P.compare_results ~baseline:results0 ~current:[ List.nth results0 0 ] ()
  in
  Alcotest.(check bool) "not clean" false (P.clean v)

(* Different op counts compare per-op (with a note), so re-pinning the ops
   of an experiment does not spuriously fail the gate. *)
let test_ops_change_compares_per_op () =
  let doubled =
    {
      m0 with
      P.ops = 200;
      sim_ns = m0.P.sim_ns * 2;
      flushes = m0.P.flushes * 2;
      fences = m0.P.fences * 2;
      crossings = m0.P.crossings * 2;
      enlarge_calls = m0.P.enlarge_calls * 2;
    }
  in
  let current = List.map (fun r -> with_m r doubled) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check (list string)) "no regressions" [] v.P.regressions;
  Alcotest.(check bool) "ops change noted" true (v.P.notes <> [])

let () =
  Alcotest.run "perf"
    [
      ( "determinism",
        [
          Alcotest.test_case "two runs byte-identical" `Quick
            test_two_runs_identical;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "bad schema rejected" `Quick
            test_bad_schema_rejected;
        ] );
      ( "comparator",
        [
          Alcotest.test_case "+20%% fails" `Quick test_synthetic_regression_fails;
          Alcotest.test_case "+5%% noise passes" `Quick
            test_noise_within_tolerance_passes;
          Alcotest.test_case "improvement reported" `Quick
            test_improvement_reported_not_failed;
          Alcotest.test_case "missing experiment fails" `Quick
            test_missing_experiment_is_regression;
          Alcotest.test_case "ops re-pin compares per-op" `Quick
            test_ops_change_compares_per_op;
        ] );
    ]
