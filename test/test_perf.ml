(* Tests for the perf-regression gate (lib/perf): the pinned experiments
   must be deterministic (byte-identical JSON across runs — the property
   that lets BENCH_perf.json be committed and compared exactly), the JSON
   must round-trip, and the trend comparator must fail on a synthetic
   regression while tolerating noise and rewarding improvements. *)

module P = Perf_gate
module J = Obs.Json
module V = Treasury.Vfs
module FL = Workloads.Fslab

(* ---- determinism --------------------------------------------------------- *)

(* Two independent runs of the full pinned set, same process: every counter
   and every simulated nanosecond must match, or the committed-baseline
   scheme breaks down into flaky gates.  The set includes the two
   64-tenant-process shared experiments, so this also proves the
   cross-process scheduling (64 FSLibs contending for one coffer lease)
   is reproducible down to the nanosecond. *)
let test_two_runs_identical () =
  let a = P.run_all ~quick:true () in
  let b = P.run_all ~quick:true () in
  Alcotest.(check string) "byte-identical JSON"
    (J.to_string (P.to_json a))
    (J.to_string (P.to_json b))

(* The stronger multi-process claim: not just the end-of-run counters but
   the full event stream — one line per completed op with its simulated
   completion time and tenant index, in completion order — is
   byte-identical across runs with 64 tenant processes.  The scheduler
   orders runnable threads by (time, seq) only and tenant labels are
   spawn indexes (not pids, which come from a global counter), so there
   is no hidden nondeterminism to absorb. *)
let shared_event_stream () =
  let buf = Buffer.create 8192 in
  let world = Sim.create () in
  let fail e = Alcotest.failf "op failed: %s" (Treasury.Errno.to_string e) in
  Sim.spawn world
    ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
    ~name:"setup"
    (fun () ->
      let _dev, kfs = FL.make_zofs ~pages:16384 ~perf:Nvm.Perf.optane () in
      let fs0 = FL.zofs_fslib kfs in
      (match V.write_file fs0 "/shared" ~mode:0o644 "" with
      | Ok () -> ()
      | Error e -> fail e);
      (match V.mkdir fs0 "/sdir" 0o755 with
      | Ok () -> ()
      | Error e -> fail e);
      for p = 0 to 63 do
        Sim.spawn world
          ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ())
          ~name:(Printf.sprintf "tenant-%d" p)
          (fun () ->
            Obs.set_tenant p;
            let fs = FL.zofs_fslib kfs in
            let payload = String.make 256 (Char.chr (65 + (p mod 26))) in
            for i = 0 to 3 do
              (match V.append_file fs "/shared" payload with
              | Ok () -> ()
              | Error e -> fail e);
              Buffer.add_string buf
                (Printf.sprintf "t=%d p=%d append i=%d\n" (Sim.now ()) p i);
              (match
                 V.write_file fs
                   (Printf.sprintf "/sdir/p%d_%d" p i)
                   ~mode:0o644 "x"
               with
              | Ok () -> ()
              | Error e -> fail e);
              Buffer.add_string buf
                (Printf.sprintf "t=%d p=%d create i=%d\n" (Sim.now ()) p i);
              Sim.advance 300
            done)
      done);
  Sim.run world;
  Buffer.contents buf

let test_64proc_event_stream_identical () =
  let a = shared_event_stream () in
  let b = shared_event_stream () in
  Alcotest.(check int) "stream non-trivial (64 procs x 8 events)"
    (64 * 8)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' a)));
  Alcotest.(check string) "byte-identical event streams" a b

(* ---- JSON round trip ------------------------------------------------------ *)

let m0 =
  {
    P.ops = 100;
    sim_ns = 123456;
    flushes = 800;
    redundant_flushes = 10;
    fences = 210;
    redundant_fences = 0;
    crossings = 3;
    enlarge_calls = 2;
  }

let results0 =
  [ { P.r_name = "append"; r_m = m0 }; { P.r_name = "create"; r_m = m0 } ]

let test_json_roundtrip () =
  let s = J.to_string (P.to_json results0) in
  match J.of_string s with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok j -> (
      match P.of_json j with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok back ->
          Alcotest.(check bool) "round-trips exactly" true (back = results0))

let test_bad_schema_rejected () =
  match P.of_json (J.Obj [ ("schema", J.Str "zofs-perf-999") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema must be rejected"

(* ---- the trend comparator ------------------------------------------------- *)

let scale f m =
  {
    m with
    P.sim_ns = int_of_float (float_of_int m.P.sim_ns *. f);
    flushes = int_of_float (float_of_int m.P.flushes *. f);
    fences = int_of_float (float_of_int m.P.fences *. f);
  }

let with_m r m = { r with P.r_m = m }

(* +20% on every per-op dimension of one experiment: well past the 10%
   tolerance, the gate must fail — and name the experiment. *)
let test_synthetic_regression_fails () =
  let current =
    [ with_m (List.nth results0 0) (scale 1.20 m0); List.nth results0 1 ]
  in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check bool) "not clean" false (P.clean v);
  Alcotest.(check bool) "regression names the experiment" true
    (List.exists
       (fun s -> String.length s >= 6 && String.sub s 0 6 = "append")
       v.P.regressions)

(* +5% is inside the tolerance: noise, not a regression. *)
let test_noise_within_tolerance_passes () =
  let current = List.map (fun r -> with_m r (scale 1.05 m0)) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check (list string)) "no regressions" [] v.P.regressions

(* -30%: an improvement is reported, never a failure. *)
let test_improvement_reported_not_failed () =
  let current = List.map (fun r -> with_m r (scale 0.70 m0)) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check bool) "clean" true (P.clean v);
  Alcotest.(check bool) "improvements reported" true (v.P.improvements <> [])

(* A baseline experiment the current run no longer produces is a regression
   (a silently dropped experiment must not weaken the gate). *)
let test_missing_experiment_is_regression () =
  let v =
    P.compare_results ~baseline:results0 ~current:[ List.nth results0 0 ] ()
  in
  Alcotest.(check bool) "not clean" false (P.clean v)

(* Different op counts compare per-op (with a note), so re-pinning the ops
   of an experiment does not spuriously fail the gate. *)
let test_ops_change_compares_per_op () =
  let doubled =
    {
      m0 with
      P.ops = 200;
      sim_ns = m0.P.sim_ns * 2;
      flushes = m0.P.flushes * 2;
      fences = m0.P.fences * 2;
      crossings = m0.P.crossings * 2;
      enlarge_calls = m0.P.enlarge_calls * 2;
    }
  in
  let current = List.map (fun r -> with_m r doubled) results0 in
  let v = P.compare_results ~baseline:results0 ~current () in
  Alcotest.(check (list string)) "no regressions" [] v.P.regressions;
  Alcotest.(check bool) "ops change noted" true (v.P.notes <> [])

let () =
  Alcotest.run "perf"
    [
      ( "determinism",
        [
          Alcotest.test_case "two runs byte-identical" `Quick
            test_two_runs_identical;
          Alcotest.test_case "64-process event stream byte-identical" `Quick
            test_64proc_event_stream_identical;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "bad schema rejected" `Quick
            test_bad_schema_rejected;
        ] );
      ( "comparator",
        [
          Alcotest.test_case "+20%% fails" `Quick test_synthetic_regression_fails;
          Alcotest.test_case "+5%% noise passes" `Quick
            test_noise_within_tolerance_passes;
          Alcotest.test_case "improvement reported" `Quick
            test_improvement_reported_not_failed;
          Alcotest.test_case "missing experiment fails" `Quick
            test_missing_experiment_is_regression;
          Alcotest.test_case "ops re-pin compares per-op" `Quick
            test_ops_change_compares_per_op;
        ] );
    ]
