(* Crash-consistency and offline-recovery tests (paper §3.5, §5.3, §6.5).

   ZoFS is synchronous: every completed operation must survive a crash —
   even one that randomly drops any subset of unflushed cache lines. *)

open Testkit
module V = Treasury.Vfs
module K = Treasury.Kernfs
module E = Treasury.Errno
module D = Nvm.Device

let remount w =
  let kfs = K.mount w.dev w.mpk in
  { w with kfs }

let test_completed_writes_survive_crash () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/a" ~mode:0o777 "alpha");
      ok_or_fail (V.mkdir fs "/dir" 0o777);
      ok_or_fail (V.write_file fs "/dir/b" ~mode:0o777 (String.make 5000 'b')));
  D.crash w.dev;
  (* random subset of pending lines persisted *)
  let w = remount w in
  in_proc ~uid:0 w (fun fs ->
      Alcotest.(check string) "a" "alpha" (ok_or_fail (V.read_file fs "/a"));
      Alcotest.(check string) "dir/b" (String.make 5000 'b')
        (ok_or_fail (V.read_file fs "/dir/b")))

let test_completed_unlink_survives_crash () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/gone" ~mode:0o777 "x");
      ok_or_fail (V.unlink fs "/gone"));
  D.crash ~policy:`Drop_all w.dev;
  let w = remount w in
  in_proc ~uid:0 w (fun fs -> expect_err E.ENOENT (V.stat fs "/gone"))

let test_recover_all_preserves_files () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.mkdir fs "/data" 0o777);
      for i = 1 to 20 do
        ok_or_fail
          (V.write_file fs (Printf.sprintf "/data/f%d" i) ~mode:0o777
             (Printf.sprintf "content-%d" i))
      done;
      (* a private file in its own coffer too *)
      ok_or_fail (V.write_file fs "/data/secret" ~mode:0o600 "top"));
  D.crash w.dev;
  let w = remount w in
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "scanned >= 2 coffers" true
    (report.Zofs.Recovery.coffers_scanned >= 2);
  in_proc ~uid:0 w (fun fs ->
      for i = 1 to 20 do
        Alcotest.(check string)
          (Printf.sprintf "f%d" i)
          (Printf.sprintf "content-%d" i)
          (ok_or_fail (V.read_file fs (Printf.sprintf "/data/f%d" i)))
      done;
      Alcotest.(check string) "secret" "top"
        (ok_or_fail (V.read_file fs "/data/secret")))

let test_recovery_reclaims_free_list_pages () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      (* Create and delete files: deleted pages sit on per-thread free
         lists, still assigned to the coffer. *)
      for i = 1 to 30 do
        ok_or_fail
          (V.write_file fs (Printf.sprintf "/churn%d" i) ~mode:0o777
             (String.make 8192 'x'))
      done;
      for i = 1 to 30 do
        ok_or_fail (V.unlink fs (Printf.sprintf "/churn%d" i))
      done);
  let free_before = Sim.run_thread (fun () -> K.free_pages w.kfs) in
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  let free_after = Sim.run_thread (fun () -> K.free_pages w.kfs) in
  Alcotest.(check bool) "pages reclaimed" true
    (report.Zofs.Recovery.pages_reclaimed > 0);
  Alcotest.(check bool) "kernel free pool grew" true (free_after > free_before)

let test_recovery_drops_corrupted_dentry () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/keep" ~mode:0o777 "keep");
      ok_or_fail (V.write_file fs "/corrupt" ~mode:0o777 "dead"));
  (* Corrupt /corrupt's inode magic from kernel mode (simulating a stray
     write that slipped through). *)
  Sim.run_thread (fun () ->
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let root = K.root_coffer w.kfs in
              let info =
                match Treasury.Coffer.read w.dev ~id:root with
                | Some i -> i
                | None -> Alcotest.fail "no root"
              in
              let dir_ino = info.Treasury.Coffer.root_file in
              match Zofs.Dir.lookup w.dev ~ino:dir_ino "corrupt" with
              | Some de ->
                  Nvm.Device.write_u32 w.dev de.Zofs.Dir.de_inode 0xDEAD;
                  Nvm.Device.persist_all w.dev
              | None -> Alcotest.fail "dentry missing")));
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "dropped a dentry" true
    (report.Zofs.Recovery.dentries_dropped >= 1);
  in_proc ~uid:0 w (fun fs ->
      Alcotest.(check string) "intact file survives" "keep"
        (ok_or_fail (V.read_file fs "/keep"));
      expect_err E.ENOENT (V.stat fs "/corrupt"))

let test_recovery_validates_cross_refs () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/victim" ~mode:0o600 "private");
      ok_or_fail (V.write_file fs "/decoy" ~mode:0o640 "decoy"));
  (* Point /decoy's cross-coffer dentry at /victim's coffer: a manipulated
     cross-coffer reference (wrong path→cid binding). *)
  Sim.run_thread (fun () ->
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let root = K.root_coffer w.kfs in
              let info = Option.get (Treasury.Coffer.read w.dev ~id:root) in
              let dir_ino = info.Treasury.Coffer.root_file in
              let victim_cid =
                match K.coffer_find w.kfs "/victim" with
                | Ok c -> c
                | Error _ -> Alcotest.fail "victim coffer"
              in
              match Zofs.Dir.lookup w.dev ~ino:dir_ino "decoy" with
              | Some de ->
                  Nvm.Device.write_u64 w.dev
                    (de.Zofs.Dir.de_addr + Zofs.Layout.d_coffer)
                    victim_cid;
                  Nvm.Device.persist_all w.dev
              | None -> Alcotest.fail "decoy dentry")));
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "cross refs checked" true
    (report.Zofs.Recovery.cross_refs_checked >= 1);
  (* The decoy coffer still exists in the trusted path map, so the
     manipulated dentry is repaired, not dropped. *)
  Alcotest.(check bool) "bad ref repaired" true
    (report.Zofs.Recovery.cross_refs_repaired >= 1);
  in_proc ~uid:0 w (fun fs ->
      Alcotest.(check string) "decoy restored" "decoy"
        (ok_or_fail (V.read_file fs "/decoy"));
      Alcotest.(check string) "victim untouched" "private"
        (ok_or_fail (V.read_file fs "/victim")))

let test_recovery_drops_dangling_cross_ref () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/doomed" ~mode:0o640 "x"));
  (* Delete the coffer behind /doomed directly in the kernel, leaving the
     parent dentry dangling. *)
  Sim.run_thread (fun () ->
      ignore (K.fs_mount w.kfs);
      let cid =
        match K.coffer_find w.kfs "/doomed" with
        | Ok c -> c
        | Error _ -> Alcotest.fail "doomed coffer"
      in
      (match K.coffer_delete w.kfs cid with
      | Ok () -> ()
      | Error e -> Alcotest.failf "delete: %s" (E.to_string e));
      ignore (K.fs_umount w.kfs));
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "dangling ref dropped" true
    (report.Zofs.Recovery.cross_refs_dropped >= 1);
  in_proc ~uid:0 w (fun fs -> expect_err E.ENOENT (V.stat fs "/doomed"))

let test_recovery_reinitializes_corrupt_root_inode () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/solo" ~mode:0o600 "alone"));
  Sim.run_thread (fun () ->
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let cid =
                match K.coffer_find w.kfs "/solo" with
                | Ok c -> c
                | Error _ -> Alcotest.fail "solo coffer"
              in
              let info = Option.get (Treasury.Coffer.read w.dev ~id:cid) in
              Nvm.Device.write_u32 w.dev info.Treasury.Coffer.root_file 0;
              Nvm.Device.persist_all w.dev)));
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "reinitialized" true
    (report.Zofs.Recovery.inodes_reinitialized >= 1)

(* Crash between inode publish and dentry insert: create() persists the new
   inode (and its data pages) before the dentry that names it.  A crash in
   that window leaves a fully-formed but unreachable inode inside the
   coffer.  Recovery must reclaim its pages and leave the rest intact.  We
   build the torn state directly: create the file, then durably erase only
   its dentry. *)
let test_recovery_orphan_inode_without_dentry () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/keep" ~mode:0o777 "keep");
      ok_or_fail (V.write_file fs "/limbo" ~mode:0o777 (String.make 9000 'l')));
  Sim.run_thread (fun () ->
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let root = K.root_coffer w.kfs in
              let info = Option.get (Treasury.Coffer.read w.dev ~id:root) in
              let dir_ino = info.Treasury.Coffer.root_file in
              (match Zofs.Dir.remove w.dev ~ino:dir_ino "limbo" with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "limbo dentry missing");
              Nvm.Device.persist_all w.dev)));
  D.crash ~policy:`Drop_all w.dev;
  let w = remount w in
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "orphan inode pages reclaimed" true
    (report.Zofs.Recovery.pages_reclaimed >= 1);
  let report2 = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check (list string)) "second run is a fixpoint" []
    (List.map Zofs.Recovery.finding_to_string (Zofs.Recovery.findings report2));
  in_proc ~uid:0 w (fun fs ->
      expect_err E.ENOENT (V.stat fs "/limbo");
      Alcotest.(check string) "bystander intact" "keep"
        (ok_or_fail (V.read_file fs "/keep")))

(* Torn coffer root page: a multi-line update to the root inode page is
   interrupted by a `Drop_all crash after only the first line was fenced.
   The durable page mixes old and new lines — here the magic is destroyed
   while a later line's update is lost entirely.  Recovery must
   reinitialize the root inode and reach a fixpoint on the second run. *)
let test_recovery_torn_coffer_root_page () =
  let w = make_world () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.write_file fs "/keep" ~mode:0o777 "keep");
      ok_or_fail (V.write_file fs "/solo" ~mode:0o600 "alone"));
  Sim.run_thread (fun () ->
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let cid =
                match K.coffer_find w.kfs "/solo" with
                | Ok c -> c
                | Error _ -> Alcotest.fail "solo coffer"
              in
              let info = Option.get (Treasury.Coffer.read w.dev ~id:cid) in
              let root = info.Treasury.Coffer.root_file in
              (* first line reaches NVM... *)
              Nvm.Device.write_u32 w.dev root 0;
              Nvm.Device.persist_range w.dev root 4;
              (* ...the rest of the update is still in the cache when power
                 fails *)
              Nvm.Device.write_u64 w.dev (root + 64) 0xDEADBEEF)));
  D.crash ~policy:`Drop_all w.dev;
  let w = remount w in
  let report = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check bool) "root inode reinitialized" true
    (report.Zofs.Recovery.inodes_reinitialized >= 1);
  let report2 = Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs) in
  Alcotest.(check (list string)) "second run is a fixpoint" []
    (List.map Zofs.Recovery.finding_to_string (Zofs.Recovery.findings report2));
  in_proc ~uid:0 w (fun fs ->
      Alcotest.(check string) "bystander intact" "keep"
        (ok_or_fail (V.read_file fs "/keep"));
      ignore (ok_or_fail (V.readdir fs "/")))

let qcheck_crash_recovery_preserves_completed_ops =
  QCheck.Test.make
    ~name:"completed ops survive random crashes + recovery" ~count:15
    QCheck.(
      pair int64
        (list_of_size (Gen.int_range 1 25)
           (triple (int_range 0 7) bool (string_of_size (Gen.int_range 0 200)))))
    (fun (seed, ops) ->
      let w = make_world () in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      in_proc ~uid:0 w (fun fs ->
          List.iter
            (fun (n, create, data) ->
              let path = Printf.sprintf "/file%d" n in
              if create then begin
                match V.write_file fs path ~mode:0o777 data with
                | Ok () -> Hashtbl.replace model path data
                | Error _ -> ()
              end
              else begin
                (match V.unlink fs path with Ok () | Error _ -> ());
                Hashtbl.remove model path
              end)
            ops);
      (* Crash with a seed-dependent subset of pending lines persisted. *)
      ignore seed;
      D.crash w.dev;
      let kfs = K.mount w.dev w.mpk in
      let w = { w with kfs } in
      ignore (Sim.run_thread (fun () -> Zofs.Recovery.recover_all w.kfs));
      in_proc ~uid:0 w (fun fs ->
          Hashtbl.fold
            (fun path data ok -> ok && V.read_file fs path = Ok data)
            model true))

let () =
  Alcotest.run "recovery"
    [
      ( "crash-consistency",
        [
          Alcotest.test_case "completed writes survive" `Quick
            test_completed_writes_survive_crash;
          Alcotest.test_case "completed unlink survives" `Quick
            test_completed_unlink_survives_crash;
          QCheck_alcotest.to_alcotest
            qcheck_crash_recovery_preserves_completed_ops;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "preserves files" `Quick
            test_recover_all_preserves_files;
          Alcotest.test_case "reclaims free-list pages" `Quick
            test_recovery_reclaims_free_list_pages;
          Alcotest.test_case "drops corrupted dentry" `Quick
            test_recovery_drops_corrupted_dentry;
          Alcotest.test_case "validates cross refs" `Quick
            test_recovery_validates_cross_refs;
          Alcotest.test_case "drops dangling cross ref" `Quick
            test_recovery_drops_dangling_cross_ref;
          Alcotest.test_case "reinitializes root inode" `Quick
            test_recovery_reinitializes_corrupt_root_inode;
          Alcotest.test_case "reclaims orphan inode (publish/dentry window)"
            `Quick test_recovery_orphan_inode_without_dentry;
          Alcotest.test_case "repairs torn coffer root page" `Quick
            test_recovery_torn_coffer_root_page;
        ] );
    ]
