(* Tests for the discrete-event simulation kernel. *)

let test_run_thread () =
  let r = Sim.run_thread (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r

let test_advance () =
  let r =
    Sim.run_thread (fun () ->
        Alcotest.(check int) "t0" 0 (Sim.now ());
        Sim.advance 100;
        Sim.advance 50;
        Sim.now ())
  in
  Alcotest.(check int) "time" 150 r

let test_outside_sim () =
  Alcotest.(check bool) "not in sim" false (Sim.in_sim ());
  Alcotest.(check int) "now=0" 0 (Sim.now ());
  Sim.advance 1000 (* no-op, must not raise *)

let test_interleaving () =
  (* Threads must run in virtual-time order regardless of spawn order. *)
  let order = ref [] in
  let w = Sim.create () in
  Sim.spawn w ~name:"slow" (fun () ->
      Sim.advance 100;
      order := "slow" :: !order);
  Sim.spawn w ~name:"fast" (fun () ->
      Sim.advance 10;
      order := "fast" :: !order);
  Sim.run w;
  Alcotest.(check (list string)) "order" [ "slow"; "fast" ] !order

let test_spawn_at () =
  let times = ref [] in
  let w = Sim.create () in
  Sim.spawn w ~at:500 ~name:"late" (fun () -> times := ("late", Sim.now ()) :: !times);
  Sim.spawn w ~name:"early" (fun () -> times := ("early", Sim.now ()) :: !times);
  Sim.run w;
  Alcotest.(check (list (pair string int)))
    "times"
    [ ("late", 500); ("early", 0) ]
    !times

let test_mutex_exclusion () =
  let m = Sim.Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let w = Sim.create () in
  for i = 1 to 4 do
    Sim.spawn w ~name:(Printf.sprintf "t%d" i) (fun () ->
        Sim.Mutex.with_lock m (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.advance 10;
            decr inside))
  done;
  Sim.run w;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside

let test_mutex_contention_serializes_time () =
  (* 4 threads each hold the lock for 100ns: the last one must finish at
     >= 400ns of virtual time. *)
  let m = Sim.Mutex.create () in
  let finish = ref 0 in
  let w = Sim.create () in
  for i = 1 to 4 do
    Sim.spawn w ~name:(Printf.sprintf "t%d" i) (fun () ->
        Sim.Mutex.with_lock m (fun () -> Sim.advance 100);
        if Sim.now () > !finish then finish := Sim.now ())
  done;
  Sim.run w;
  Alcotest.(check int) "serialized" 400 !finish

let test_mutex_try_lock () =
  Sim.run_thread (fun () ->
      let m = Sim.Mutex.create () in
      Alcotest.(check bool) "first" true (Sim.Mutex.try_lock m);
      Alcotest.(check bool) "second" false (Sim.Mutex.try_lock m);
      Sim.Mutex.unlock m;
      Alcotest.(check bool) "after unlock" true (Sim.Mutex.try_lock m);
      Sim.Mutex.unlock m)

let test_rwlock_readers_parallel () =
  (* Readers overlap: each reads for 100ns, all finish at t=100. *)
  let l = Sim.Rwlock.create () in
  let finish = ref 0 in
  let w = Sim.create () in
  for i = 1 to 4 do
    Sim.spawn w ~name:(Printf.sprintf "r%d" i) (fun () ->
        Sim.Rwlock.with_rd l (fun () -> Sim.advance 100);
        if Sim.now () > !finish then finish := Sim.now ())
  done;
  Sim.run w;
  Alcotest.(check int) "parallel readers" 100 !finish

let test_rwlock_writer_excludes () =
  let l = Sim.Rwlock.create () in
  let finish = ref 0 in
  let w = Sim.create () in
  for i = 1 to 3 do
    Sim.spawn w ~name:(Printf.sprintf "w%d" i) (fun () ->
        Sim.Rwlock.with_wr l (fun () -> Sim.advance 100);
        if Sim.now () > !finish then finish := Sim.now ())
  done;
  Sim.run w;
  Alcotest.(check int) "serialized writers" 300 !finish

let test_rwlock_writer_waits_for_readers () =
  let l = Sim.Rwlock.create () in
  let writer_done = ref 0 in
  let w = Sim.create () in
  Sim.spawn w ~name:"reader" (fun () ->
      Sim.Rwlock.with_rd l (fun () -> Sim.advance 100));
  Sim.spawn w ~at:10 ~name:"writer" (fun () ->
      Sim.Rwlock.with_wr l (fun () -> Sim.advance 5);
      writer_done := Sim.now ());
  Sim.run w;
  Alcotest.(check int) "writer after reader" 105 !writer_done

let test_resource_serializes () =
  (* Two threads both request 100ns of the channel at t=0: second finishes at
     200. *)
  let r = Sim.Resource.create () in
  let finish = ref [] in
  let w = Sim.create () in
  for i = 1 to 2 do
    Sim.spawn w ~name:(Printf.sprintf "u%d" i) (fun () ->
        Sim.Resource.use r 100;
        finish := Sim.now () :: !finish)
  done;
  Sim.run w;
  Alcotest.(check (list int)) "finish times" [ 200; 100 ] !finish

let test_deadlock_detection () =
  let m = Sim.Mutex.create ~name:"held" () in
  let w = Sim.create () in
  Sim.spawn w ~name:"holder" (fun () ->
      Sim.Mutex.lock m (* never unlocked; thread ends while a waiter parks *);
      Sim.advance 10;
      Sim.Mutex.lock m (* self-deadlock *));
  Alcotest.check_raises "deadlock"
    (Sim.Deadlock "1 thread(s) blocked: #0 on held") (fun () -> Sim.run w)

let test_sleep_until () =
  Sim.run_thread (fun () ->
      Sim.sleep_until 1000;
      Alcotest.(check int) "slept" 1000 (Sim.now ());
      Sim.sleep_until 500;
      Alcotest.(check int) "no backwards" 1000 (Sim.now ()))

let test_proc_identity () =
  let p = Sim.Proc.create ~uid:7 ~gid:8 () in
  let uid =
    Sim.run_thread ~proc:p (fun () -> (Sim.self_proc ()).Sim.Proc.uid)
  in
  Alcotest.(check int) "uid" 7 uid;
  Alcotest.(check int) "outside proc is root" 0 (Sim.self_proc ()).Sim.Proc.uid

let test_kill_process_semantics () =
  (* SIGKILL for a whole pid: every thread dies at a suspension point, no
     finalizer runs, survivors in other processes observe the deaths. *)
  let victim = Sim.Proc.create ~uid:100 ~gid:100 () in
  let finalizers_ran = ref 0 in
  let victim_tids = ref [] in
  let observed = ref None in
  let w = Sim.create () in
  for i = 1 to 3 do
    let tid =
      Sim.spawn_tid w ~proc:victim ~name:(Printf.sprintf "victim%d" i)
        (fun () ->
          Fun.protect
            ~finally:(fun () -> incr finalizers_ran)
            (fun () ->
              for _ = 1 to 1000 do
                Sim.advance 10
              done))
    in
    victim_tids := tid :: !victim_tids
  done;
  Sim.spawn w ~name:"driver" (fun () ->
      Sim.advance 100;
      Sim.kill_process ~pid:victim.Sim.Proc.pid;
      (* Victims die at their next advance; pump until none is left. *)
      let budget = ref 100 in
      while Sim.proc_alive victim.Sim.Proc.pid && !budget > 0 do
        decr budget;
        Sim.advance 50
      done;
      observed :=
        Some
          ( Sim.proc_alive victim.Sim.Proc.pid,
            List.map Sim.thread_alive !victim_tids,
            Sim.killed_threads () ));
  Sim.run w;
  (match !observed with
  | None -> Alcotest.fail "driver did not run"
  | Some (alive, per_thread, killed) ->
      Alcotest.(check bool) "proc dead" false alive;
      Alcotest.(check (list bool))
        "every victim thread dead" [ false; false; false ] per_thread;
      Alcotest.(check int) "killed count" 3 killed);
  Alcotest.(check int) "no finalizer ran" 0 !finalizers_ran;
  (* pid->tid tracking is per-world: a fresh world knows nothing of pid. *)
  let w2 = Sim.create () in
  Sim.spawn w2 ~name:"check" (fun () ->
      Alcotest.(check (list int))
        "fresh world has no tids for the pid" []
        (Sim.proc_tids victim.Sim.Proc.pid));
  Sim.run w2

let test_kill_process_defers_past_no_kill () =
  (* A thread inside a no-kill section (modelling a syscall) completes the
     section before dying: the kill fires at the first advance outside. *)
  let victim = Sim.Proc.create () in
  let section_done = ref false and after_section = ref false in
  let w = Sim.create () in
  Sim.spawn w ~proc:victim ~name:"victim" (fun () ->
      Sim.advance 10;
      Sim.with_no_kill (fun () ->
          for _ = 1 to 20 do
            Sim.advance 10
          done;
          section_done := true);
      Sim.advance 10;
      after_section := true);
  Sim.spawn w ~name:"driver" (fun () ->
      Sim.advance 5;
      Sim.kill_process ~pid:victim.Sim.Proc.pid;
      let budget = ref 100 in
      while Sim.proc_alive victim.Sim.Proc.pid && !budget > 0 do
        decr budget;
        Sim.advance 50
      done);
  Sim.run w;
  Alcotest.(check bool) "no-kill section completed" true !section_done;
  Alcotest.(check bool) "died at first advance outside" false !after_section

let test_rng_deterministic () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next a) (Sim.Rng.next b)
  done

let test_rng_bounds () =
  let r = Sim.Rng.create 99L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 1000 do
    let f = Sim.Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of range"
  done

let test_stats () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "count" 3 (Sim.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Sim.Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Sim.Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Sim.Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Sim.Stats.total s)

let test_yield_fairness () =
  (* Two threads at the same timestamp alternate via yield in spawn order. *)
  let log = Buffer.create 16 in
  let w = Sim.create () in
  Sim.spawn w ~name:"a" (fun () ->
      for _ = 1 to 3 do
        Buffer.add_char log 'a';
        Sim.yield ()
      done);
  Sim.spawn w ~name:"b" (fun () ->
      for _ = 1 to 3 do
        Buffer.add_char log 'b';
        Sim.yield ()
      done);
  Sim.run w;
  Alcotest.(check string) "alternate" "ababab" (Buffer.contents log)

let test_nested_spawn () =
  let total = ref 0 in
  let w = Sim.create () in
  Sim.spawn w ~name:"parent" (fun () ->
      Sim.advance 10;
      for i = 1 to 3 do
        Sim.spawn w ~name:(Printf.sprintf "child%d" i) (fun () ->
            Alcotest.(check int) "child starts at parent time" 10 (Sim.now ());
            total := !total + i)
      done);
  Sim.run w;
  Alcotest.(check int) "children ran" 6 !total

let qcheck_mutex_never_negative =
  QCheck.Test.make ~name:"mutex critical sections never overlap" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 8) (int_range 1 50))
    (fun durations ->
      let m = Sim.Mutex.create () in
      let inside = ref 0 in
      let ok = ref true in
      let w = Sim.create () in
      List.iteri
        (fun i d ->
          Sim.spawn w ~name:(Printf.sprintf "t%d" i) (fun () ->
              Sim.Mutex.with_lock m (fun () ->
                  incr inside;
                  if !inside <> 1 then ok := false;
                  Sim.advance d;
                  decr inside)))
        durations;
      Sim.run w;
      !ok)

let qcheck_resource_total_time =
  QCheck.Test.make ~name:"resource reservations sum up" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 8) (int_range 1 100))
    (fun durations ->
      let r = Sim.Resource.create () in
      let latest = ref 0 in
      let w = Sim.create () in
      List.iteri
        (fun i d ->
          Sim.spawn w ~name:(Printf.sprintf "t%d" i) (fun () ->
              Sim.Resource.use r d;
              if Sim.now () > !latest then latest := Sim.now ()))
        durations;
      Sim.run w;
      !latest = List.fold_left ( + ) 0 durations)

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "run_thread" `Quick test_run_thread;
          Alcotest.test_case "advance" `Quick test_advance;
          Alcotest.test_case "outside sim" `Quick test_outside_sim;
          Alcotest.test_case "interleaving by time" `Quick test_interleaving;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "sleep_until" `Quick test_sleep_until;
          Alcotest.test_case "yield fairness" `Quick test_yield_fairness;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "proc identity" `Quick test_proc_identity;
          Alcotest.test_case "kill-whole-process semantics" `Quick
            test_kill_process_semantics;
          Alcotest.test_case "kill-process defers past no-kill" `Quick
            test_kill_process_defers_past_no_kill;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "mutex serializes time" `Quick
            test_mutex_contention_serializes_time;
          Alcotest.test_case "try_lock" `Quick test_mutex_try_lock;
          Alcotest.test_case "rwlock readers parallel" `Quick
            test_rwlock_readers_parallel;
          Alcotest.test_case "rwlock writers exclude" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "writer waits for readers" `Quick
            test_rwlock_writer_waits_for_readers;
          Alcotest.test_case "resource serializes" `Quick
            test_resource_serializes;
          QCheck_alcotest.to_alcotest qcheck_mutex_never_negative;
          QCheck_alcotest.to_alcotest qcheck_resource_total_time;
        ] );
      ( "rng+stats",
        [
          Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
