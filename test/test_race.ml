(* Race sanitizer (lib/race): core detection machinery, the lease-steal
   happens-before edge, allowlist scopes, and the composition of the
   check + race trace subscribers through the named-slot helper. *)

module D = Nvm.Device

let page = Nvm.page_size

let mkdev () = D.create ~perf:Nvm.Perf.free ~size:(4 * page) ()

(* Run [f] in a fresh world with a detector attached in Log mode and
   return the report. *)
let with_detector ?(mode = Race.Log) f =
  Race.reset_report ();
  let dev = mkdev () in
  let _t = Race.attach ~mode dev in
  Fun.protect ~finally:Race.detach (fun () ->
      let w = Sim.create () in
      Sim.spawn w ~name:"root" (fun () -> f w dev);
      Sim.run w);
  Race.report ()

let races r = List.length r.Race.r_races

(* ---- core detection ------------------------------------------------------ *)

(* Two threads store to the same word with no synchronization: the report
   is deduplicated by (word, previous thread, current thread), so the
   alternating stores collapse to one race per direction — two entries,
   not one per iteration. *)
let test_unsynced_write_write () =
  let r =
    with_detector (fun w dev ->
        for _ = 0 to 1 do
          Sim.spawn w ~name:"writer" (fun () ->
              for _ = 1 to 4 do
                D.write_u64 dev 64 1;
                Sim.advance 10
              done)
        done)
  in
  Alcotest.(check int) "one deduplicated race per direction" 2 (races r)

(* The same store pattern under a shared simulated mutex is clean (lockset
   via the S_mutex_lock/unlock sync events, plus the HB edge the unlock →
   lock chain provides). *)
let test_mutex_orders () =
  let r =
    with_detector (fun w dev ->
        let m = Sim.Mutex.create () in
        for _ = 0 to 1 do
          Sim.spawn w ~name:"writer" (fun () ->
              for _ = 1 to 4 do
                Sim.Mutex.lock m;
                D.write_u64 dev 64 1;
                Sim.Mutex.unlock m;
                Sim.advance 10
              done)
        done)
  in
  Alcotest.(check int) "mutex-ordered stores are clean" 0 (races r)

(* Reads against a clean snapshot never conflict with each other. *)
let test_read_read_clean () =
  let r =
    with_detector (fun w dev ->
        D.write_u64 dev 64 7;
        for _ = 0 to 1 do
          Sim.spawn w ~name:"reader" (fun () ->
              for _ = 1 to 4 do
                ignore (D.read_u64 dev 64);
                Sim.advance 10
              done)
        done)
  in
  Alcotest.(check int) "read/read is not a race" 0 (races r)

(* A CAS'd word is a synchronization word: stores racing with the CAS
   protocol itself (lease words, slot owners) are never reported. *)
let test_cas_word_exempt () =
  let r =
    with_detector (fun w dev ->
        for _ = 0 to 1 do
          Sim.spawn w ~name:"caser" (fun () ->
              for _ = 1 to 4 do
                let v = D.read_u64 dev 64 in
                ignore (D.cas_u64 dev 64 ~expected:v ~desired:(v + 1));
                Sim.advance 10
              done)
        done)
  in
  Alcotest.(check int) "CAS words are exempt" 0 (races r)

(* intentional_racy suppresses the report and counts the site instead —
   whether the scope wraps the second access or the first. *)
let test_allowlist_scope () =
  let r =
    with_detector (fun w dev ->
        Sim.spawn w ~name:"writer" (fun () ->
            D.write_u64 dev 64 1;
            Sim.advance 50);
        Sim.spawn w ~name:"reader" (fun () ->
            Sim.advance 20;
            ignore
              (Race.intentional_racy dev ~site:"test.peek"
                 ~justification:"unit test: racy peek is the point"
                 (fun () -> D.read_u64 dev 64))))
  in
  Alcotest.(check int) "allowlisted conflict not reported" 0 (races r);
  Alcotest.(check (list (pair string int)))
    "hit counted per site"
    [ ("test.peek", 1) ]
    (List.sort compare r.Race.r_allowlist)

let test_allowlist_requires_justification () =
  let dev = mkdev () in
  match
    Race.intentional_racy dev ~site:"x" ~justification:"" (fun () -> ())
  with
  | () -> Alcotest.fail "empty justification accepted"
  | exception Invalid_argument _ -> ()

(* Fail mode raises at the racy access itself. *)
let test_fail_mode_raises () =
  let raised = ref false in
  let r =
    with_detector ~mode:Race.Fail (fun w dev ->
        Sim.spawn w ~name:"writer" (fun () ->
            D.write_u64 dev 64 1;
            Sim.advance 50);
        Sim.spawn w ~name:"reader" (fun () ->
            Sim.advance 20;
            match D.read_u64 dev 64 with
            | _ -> ()
            | exception Race.Race_found _ -> raised := true))
  in
  Alcotest.(check bool) "Race_found raised" true !raised;
  Alcotest.(check int) "and recorded" 1 (races r)

(* The publish clock carries the publisher's whole history: a reader that
   joins it is ordered after everything the publisher did before. *)
let test_publish_blesses_prior_writes () =
  let r =
    with_detector (fun w dev ->
        Sim.spawn w ~name:"publisher" (fun () ->
            D.write_u64 dev 64 1;
            (* payload *)
            D.flush_range dev 64 8;
            D.sfence dev;
            Race.publish dev ~label:"test" 64 8);
        Sim.spawn w ~name:"reader" (fun () ->
            Sim.advance 1000;
            ignore (D.read_u64 dev 64)))
  in
  Alcotest.(check int) "published hand-off is ordered" 0 (races r)

(* on_recycle drops a word's history: the next owner starts clean. *)
let test_recycle_drops_history () =
  let r =
    with_detector (fun w dev ->
        Sim.spawn w ~name:"old-owner" (fun () ->
            D.write_u64 dev 64 1;
            Sim.advance 50);
        Sim.spawn w ~name:"allocator" (fun () ->
            Sim.advance 100;
            Race.on_recycle dev 64 8;
            D.write_u64 dev 64 2))
  in
  Alcotest.(check int) "recycled word starts a new life" 0 (races r)

(* ---- lease-steal happens-before ------------------------------------------ *)

(* A victim acquires a lease, writes, and dies without releasing.  A
   stealer that takes the expired lease joins the corpse's whole clock:
   overwriting the victim's unreleased writes is NOT a race.  The control
   run overwrites without stealing and must race — proving the edge comes
   from the steal, not from some blanket suppression. *)
let steal_scenario ~steal =
  with_detector (fun w dev ->
      let lease = 0 and data = 64 in
      let vt =
        Sim.spawn_tid w ~name:"victim" (fun () ->
            Zofs.Lease.acquire ~duration:10_000 dev lease;
            D.write_u64 dev data 1;
            (* die mid-critical-section at a later suspension point *)
            for _ = 1 to 100 do
              Sim.advance 100
            done)
      in
      (* Late enough that the acquire (clock read, CAS) and the data store
         have all happened: the victim dies inside its stall loop, lease
         still held. *)
      Sim.arm_kill ~tid:vt ~after:20;
      Sim.spawn w ~name:"stealer" (fun () ->
          Sim.sleep_until 50_000;
          (* past the victim's expiry *)
          if steal then begin
            Zofs.Lease.acquire ~duration:10_000 dev lease;
            Zofs.Lease.release dev lease
          end;
          D.write_u64 dev data 2))

let test_steal_gives_hb () =
  Alcotest.(check int)
    "stealer is ordered after the dead holder" 0
    (races (steal_scenario ~steal:true))

let test_no_steal_races () =
  Alcotest.(check int)
    "without the steal the overwrite races" 1
    (races (steal_scenario ~steal:false))

(* An expiry takeover from a LIVE victim only joins the victim's last
   fence: the fenced prefix is ordered, the unfenced tail stays racy. *)
let test_live_steal_fenced_prefix () =
  let r =
    with_detector (fun w dev ->
        let lease = 0 and fenced = 64 and unfenced = 128 in
        Sim.spawn w ~name:"staller" (fun () ->
            Zofs.Lease.acquire ~duration:5_000 dev lease;
            D.write_u64 dev fenced 1;
            D.flush_range dev fenced 8;
            D.sfence dev;
            D.write_u64 dev unfenced 1;
            (* stall past the lease's expiry without releasing *)
            Sim.advance 100_000);
        Sim.spawn w ~name:"stealer" (fun () ->
            Sim.sleep_until 50_000;
            Zofs.Lease.acquire ~duration:5_000 dev lease;
            Zofs.Lease.release dev lease;
            D.write_u64 dev fenced 2;
            D.write_u64 dev unfenced 2))
  in
  Alcotest.(check int) "only the unfenced tail races" 1 (races r);
  match r.Race.r_races with
  | [ v ] ->
      (* v_word is the shadow-word index: byte address asr 3 *)
      Alcotest.(check int) "race is on the unfenced word" (128 asr 3) v.Race.v_word
  | _ -> Alcotest.fail "expected exactly one race"

(* ---- subscriber composition ---------------------------------------------- *)

(* The named-slot helper must deliver the same event stream to every
   subscriber, in a deterministic order (anonymous first, then named
   slots in name order), regardless of installation order — this is what
   lets lib/check and lib/race coexist on one device. *)
let record_stream label log ev =
  let s =
    match ev with
    | D.T_store { addr; len; _ } -> Printf.sprintf "store %d %d" addr len
    | D.T_nt_store { addr; len; _ } -> Printf.sprintf "nt %d %d" addr len
    | D.T_cas { addr; len; _ } -> Printf.sprintf "cas %d %d" addr len
    | D.T_load { addr; len; _ } -> Printf.sprintf "load %d %d" addr len
    | D.T_clwb { addr; _ } -> Printf.sprintf "clwb %d" addr
    | D.T_fence _ -> "fence"
    | _ -> "other"
  in
  log := (label ^ ":" ^ s) :: !log

let drive dev =
  D.write_u64 dev 64 1;
  ignore (D.read_u64 dev 64);
  let v = D.read_u64 dev 128 in
  ignore (D.cas_u64 dev 128 ~expected:v ~desired:9);
  D.flush_range dev 64 8;
  D.sfence dev

let streams_of log =
  let all = List.rev !log in
  let of_label l =
    List.filter_map
      (fun s ->
        let pre = l ^ ":" in
        if String.length s > String.length pre
           && String.sub s 0 (String.length pre) = pre
        then Some (String.sub s (String.length pre)
                     (String.length s - String.length pre))
        else None)
      all
  in
  (of_label "check", of_label "race", of_label "anon", all)

let test_named_slots_compose () =
  Sim.run_thread (fun () ->
      (* install order: check then race *)
      let d1 = mkdev () in
      let log1 = ref [] in
      D.subscribe_named d1 ~name:"check" (record_stream "check" log1);
      D.subscribe_named d1 ~name:"race" (record_stream "race" log1);
      ignore (D.add_trace_subscriber d1 (record_stream "anon" log1));
      drive d1;
      (* install order reversed *)
      let d2 = mkdev () in
      let log2 = ref [] in
      ignore (D.add_trace_subscriber d2 (record_stream "anon" log2));
      D.subscribe_named d2 ~name:"race" (record_stream "race" log2);
      D.subscribe_named d2 ~name:"check" (record_stream "check" log2);
      drive d2;
      let c1, r1, a1, all1 = streams_of log1 in
      let c2, r2, _a2, all2 = streams_of log2 in
      Alcotest.(check (list string)) "check sees the same stream" c1 c2;
      Alcotest.(check (list string)) "race sees the same stream" r1 r2;
      Alcotest.(check (list string)) "check and race see identical events" c1 r1;
      Alcotest.(check (list string)) "anonymous subscriber agrees" a1 c1;
      Alcotest.(check (list string))
        "full interleaving is order-independent" all1 all2)

let test_named_slot_replaces () =
  Sim.run_thread (fun () ->
      let dev = mkdev () in
      let hits_old = ref 0 and hits_new = ref 0 in
      D.subscribe_named dev ~name:"check" (fun _ -> incr hits_old);
      D.subscribe_named dev ~name:"check" (fun _ -> incr hits_new);
      D.write_u64 dev 64 1;
      Alcotest.(check int) "replaced slot is silent" 0 !hits_old;
      Alcotest.(check bool) "new slot receives events" true (!hits_new > 0);
      D.unsubscribe_named dev ~name:"check";
      let before = !hits_new in
      D.write_u64 dev 64 2;
      Alcotest.(check int) "unsubscribed slot is silent" before !hits_new)

(* Check and Race — the real subscribers — coexist on one device: both
   observe the same run, neither starves the other. *)
let test_check_race_coexist () =
  Race.reset_report ();
  Check.reset_report ();
  let dev = mkdev () in
  let _r = Race.attach ~mode:Race.Log dev in
  let _c = Check.attach ~persist:Check.Log dev in
  Fun.protect
    ~finally:(fun () ->
      Race.detach ();
      Check.detach ())
    (fun () ->
      let w = Sim.create () in
      Sim.spawn w ~name:"a" (fun () ->
          D.write_u64 dev 64 1;
          Sim.advance 50);
      Sim.spawn w ~name:"b" (fun () ->
          Sim.advance 20;
          (* unflushed overwrite: a race for lib/race AND a persistence
             lint candidate for lib/check — both must have seen it *)
          D.write_u64 dev 64 2);
      Sim.run w);
  Alcotest.(check int) "race detector saw the conflict" 1
    (races (Race.report ()));
  Alcotest.(check bool) "shadow map populated" true
    ((Race.report ()).Race.r_words_tracked > 0)

let () =
  Alcotest.run "race"
    [
      ( "detect",
        [
          Alcotest.test_case "unsynced W/W" `Quick test_unsynced_write_write;
          Alcotest.test_case "mutex orders" `Quick test_mutex_orders;
          Alcotest.test_case "read/read clean" `Quick test_read_read_clean;
          Alcotest.test_case "CAS word exempt" `Quick test_cas_word_exempt;
          Alcotest.test_case "allowlist scope" `Quick test_allowlist_scope;
          Alcotest.test_case "allowlist needs why" `Quick
            test_allowlist_requires_justification;
          Alcotest.test_case "fail mode raises" `Quick test_fail_mode_raises;
          Alcotest.test_case "publish blesses" `Quick
            test_publish_blesses_prior_writes;
          Alcotest.test_case "recycle drops" `Quick test_recycle_drops_history;
        ] );
      ( "steal",
        [
          Alcotest.test_case "steal gives HB" `Quick test_steal_gives_hb;
          Alcotest.test_case "no steal races" `Quick test_no_steal_races;
          Alcotest.test_case "live steal: fenced prefix" `Quick
            test_live_steal_fenced_prefix;
        ] );
      ( "compose",
        [
          Alcotest.test_case "named slots compose" `Quick
            test_named_slots_compose;
          Alcotest.test_case "named slot replaces" `Quick
            test_named_slot_replaces;
          Alcotest.test_case "check+race coexist" `Quick
            test_check_race_coexist;
        ] );
    ]
