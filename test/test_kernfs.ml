(* Tests for KernFS: the coffer protocol of paper Table 5. *)

module K = Treasury.Kernfs
module A = Treasury.Alloc_table
module Coffer = Treasury.Coffer
module E = Treasury.Errno
module D = Nvm.Device

let zofs_ctype = 1

let mk () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(1024 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~nbuckets:256 ~root_ctype:zofs_ctype ~root_mode:0o777
      ~root_uid:0 ~root_gid:0 ()
  in
  (dev, mpk, kfs)

let as_user ?(uid = 1000) f =
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  Sim.run_thread ~proc f

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" (E.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s" (E.to_string expected)
  | Error e ->
      Alcotest.(check string) "errno" (E.to_string expected) (E.to_string e)

let test_mkfs_root_coffer () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let info = ok_or_fail (K.coffer_stat kfs (K.root_coffer kfs)) in
      Alcotest.(check string) "path" "/" info.Coffer.path;
      Alcotest.(check int) "ctype" zofs_ctype info.Coffer.ctype;
      Alcotest.(check int) "mode" 0o777 info.Coffer.mode;
      Alcotest.(check bool) "has root file page" true (info.Coffer.root_file > 0);
      Alcotest.(check bool) "has custom page" true (info.Coffer.custom > 0);
      (* root coffer owns exactly its 3 initial pages *)
      Alcotest.(check int) "3 pages" 3
        (A.coffer_page_count (K.alloc_table kfs) ~cid:info.Coffer.id))

let test_fs_mount_required () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      (* coffer_map before fs_mount: the process is unknown. *)
      expect_err E.EINVAL (K.coffer_map kfs (K.root_coffer kfs)))

let test_coffer_new_and_find () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/data" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      Alcotest.(check string) "path" "/data" c.Coffer.path;
      Alcotest.(check int) "find" c.Coffer.id (ok_or_fail (K.coffer_find kfs "/data"));
      let p, cid = ok_or_fail (K.coffer_locate kfs "/data/sub/file") in
      Alcotest.(check string) "locate prefix" "/data" p;
      Alcotest.(check int) "locate cid" c.Coffer.id cid)

let test_coffer_new_checks_parent_write () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(1024 * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  (* Root coffer writable only by root. *)
  let kfs =
    K.mkfs dev mpk ~nbuckets:256 ~root_ctype:zofs_ctype ~root_mode:0o755
      ~root_uid:0 ~root_gid:0 ()
  in
  as_user ~uid:1000 (fun () ->
      ok_or_fail (K.fs_mount kfs);
      expect_err E.EACCES
        (K.coffer_new kfs ~path:"/mine" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
           ~gid:1000))

let test_coffer_map_grants_access () =
  let dev, mpk, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/d" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let m = ok_or_fail (K.coffer_map kfs c.Coffer.id) in
      Alcotest.(check bool) "writable" true m.K.m_writable;
      Alcotest.(check bool) "pkey in 1..15" true (m.K.m_pkey >= 1 && m.K.m_pkey <= 15);
      (* Open the region and write to the root-file page. *)
      Mpk.with_keys mpk [ (m.K.m_pkey, Mpk.Pk_read_write) ] (fun () ->
          D.write_u64 dev m.K.m_root_file 42;
          Alcotest.(check int) "rw" 42 (D.read_u64 dev m.K.m_root_file));
      (* The coffer root page is mapped read-only even with the key open. *)
      Mpk.with_keys mpk [ (m.K.m_pkey, Mpk.Pk_read_write) ] (fun () ->
          match D.write_u64 dev (Coffer.root_addr c.Coffer.id) 1 with
          | () -> Alcotest.fail "root page must be read-only"
          | exception Nvm.Fault { reason; _ } ->
              Alcotest.(check string) "reason" "page mapped read-only" reason);
      (* Without the key: fault. *)
      (match D.read_u64 dev m.K.m_root_file with
      | _ -> Alcotest.fail "closed region must fault"
      | exception Nvm.Fault _ -> ());
      ok_or_fail (K.coffer_unmap kfs c.Coffer.id);
      match D.read_u64 dev m.K.m_root_file with
      | _ -> Alcotest.fail "unmapped coffer must fault"
      | exception Nvm.Fault _ -> ())

let test_coffer_map_permission_denied () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      (* a coffer owned by somebody else, mode 600 *)
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/other" ~ctype:zofs_ctype ~mode:0o600
             ~uid:4242 ~gid:4242)
      in
      expect_err E.EACCES (K.coffer_map kfs c.Coffer.id))

let test_coffer_map_readonly_for_group () =
  let dev, mpk, kfs = mk () in
  let proc = Sim.Proc.create ~uid:1000 ~gid:500 () in
  Sim.run_thread ~proc (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/shared" ~ctype:zofs_ctype ~mode:0o640
             ~uid:7 ~gid:500)
      in
      let m = ok_or_fail (K.coffer_map kfs c.Coffer.id) in
      Alcotest.(check bool) "not writable" false m.K.m_writable;
      Mpk.with_keys mpk [ (m.K.m_pkey, Mpk.Pk_read_write) ] (fun () ->
          ignore (D.read_u64 dev m.K.m_root_file);
          match D.write_u64 dev m.K.m_root_file 1 with
          | () -> Alcotest.fail "read-only mapping must reject writes"
          | exception Nvm.Fault _ -> ()))

let test_map_exhausts_15_regions () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      for i = 1 to 15 do
        let c =
          ok_or_fail
            (K.coffer_new kfs
               ~path:(Printf.sprintf "/c%d" i)
               ~ctype:zofs_ctype ~mode:0o600 ~uid:1000 ~gid:1000)
        in
        ignore (ok_or_fail (K.coffer_map kfs c.Coffer.id))
      done;
      let extra =
        ok_or_fail
          (K.coffer_new kfs ~path:"/c16" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      (* Only 15 MPK regions exist (paper §3.4.2). *)
      expect_err E.EMFILE (K.coffer_map kfs extra.Coffer.id);
      (* Unmapping one frees a region. *)
      let first = ok_or_fail (K.coffer_find kfs "/c1") in
      ok_or_fail (K.coffer_unmap kfs first);
      ignore (ok_or_fail (K.coffer_map kfs extra.Coffer.id)))

let test_enlarge_and_shrink () =
  let dev, mpk, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/big" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      let m = ok_or_fail (K.coffer_map kfs c.Coffer.id) in
      let granted = ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:8) in
      let total = List.fold_left (fun a (_, l) -> a + l) 0 granted in
      Alcotest.(check int) "8 pages granted" 8 total;
      Alcotest.(check int) "11 pages total" 11
        (A.coffer_page_count (K.alloc_table kfs) ~cid:c.Coffer.id);
      (* Newly granted pages are writable immediately under the same pkey. *)
      let start, _ = List.hd granted in
      Mpk.with_keys mpk [ (m.K.m_pkey, Mpk.Pk_read_write) ] (fun () ->
          D.write_u64 dev (start * Nvm.page_size) 7);
      ok_or_fail (K.coffer_shrink kfs c.Coffer.id ~runs:granted);
      Alcotest.(check int) "back to 3" 3
        (A.coffer_page_count (K.alloc_table kfs) ~cid:c.Coffer.id);
      (* Shrunk pages are no longer mapped. *)
      Mpk.with_keys mpk [ (m.K.m_pkey, Mpk.Pk_read_write) ] (fun () ->
          match D.read_u64 dev (start * Nvm.page_size) with
          | _ -> Alcotest.fail "shrunk page must fault"
          | exception Nvm.Fault _ -> ()))

let test_shrink_rejects_foreign_pages () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c1 =
        ok_or_fail
          (K.coffer_new kfs ~path:"/a" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let c2 =
        ok_or_fail
          (K.coffer_new kfs ~path:"/b" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let granted = ok_or_fail (K.coffer_enlarge kfs c2.Coffer.id ~n:4) in
      (* c1 cannot free c2's pages; nor its own root page. *)
      expect_err E.EINVAL (K.coffer_shrink kfs c1.Coffer.id ~runs:granted);
      expect_err E.EINVAL
        (K.coffer_shrink kfs c1.Coffer.id ~runs:[ (c1.Coffer.id, 1) ]))

(* Enlarge grants pages in chunks (kernfs.ml): when the allocation table
   runs dry after at least one chunk, the syscall returns the partial grant
   as a success — and pays its metrics (enlarge_calls, the shootdown)
   exactly once, with no pages leaked for the chunks that failed. *)
let test_enlarge_partial_on_exhaustion () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/big" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_map kfs c.Coffer.id));
      let free = K.free_pages kfs in
      let e0 = K.enlarge_count kfs in
      (* Ask for more than exists: whole chunks succeed, then the table runs
         dry mid-batch. *)
      let runs = ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:(free + 64)) in
      let total = List.fold_left (fun a (_, l) -> a + l) 0 runs in
      Alcotest.(check int) "whole chunks granted" (free / 16 * 16) total;
      Alcotest.(check bool) "partial, not full" true (total < free + 64);
      Alcotest.(check int) "enlarge metric paid once" 1 (K.enlarge_count kfs - e0);
      Alcotest.(check int) "no pages leaked" (free - total) (K.free_pages kfs);
      (* Once even the first chunk cannot be cut, the call is a real error
         and still grants nothing. *)
      if K.free_pages kfs < 16 then begin
        let e1 = K.enlarge_count kfs in
        expect_err E.ENOSPC (K.coffer_enlarge kfs c.Coffer.id ~n:64);
        Alcotest.(check int) "error grants nothing" (free - total)
          (K.free_pages kfs);
        ignore e1
      end)

(* A transient kernel failure (chaos-style injection) arming itself while an
   enlarge batch is in flight: the batch absorbs it after the first chunk —
   partial success, the armed fault consumed, metrics counted once.  Being a
   success, FSLib's [Transient.retry] will NOT re-issue the call, so nothing
   is double-counted and the already-granted chunk cannot leak. *)
let test_enlarge_midbatch_transient_counts_once () =
  if not (Obs.enabled ()) then Obs.enable ~spans:false ();
  let snap0 = Obs.Snapshot.take () in
  let counter name =
    let d = Obs.Snapshot.diff snap0 (Obs.Snapshot.take ()) in
    Option.value ~default:0 (Obs.Snapshot.counter_value d name)
  in
  let _, _, kfs = mk () in
  let w = Sim.create ~seed:11L () in
  let proc = Sim.Proc.create ~uid:1000 ~gid:1000 () in
  let result = ref None in
  let free0 = ref 0 in
  Sim.spawn w ~proc ~name:"grower" (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/big" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_map kfs c.Coffer.id));
      free0 := K.free_pages kfs;
      result := Some (K.coffer_enlarge kfs c.Coffer.id ~n:48));
  Sim.spawn w ~name:"injector" (fun () ->
      (* enlarge_calls is bumped at batch entry, before the shootdown delay:
         arming inside that window lands the fault mid-batch. *)
      while K.enlarge_count kfs = 0 do
        Sim.advance 25
      done;
      K.inject_transient kfs ~n:1 ());
  Sim.run w;
  (match !result with
  | Some (Ok runs) ->
      let total = List.fold_left (fun a (_, l) -> a + l) 0 runs in
      Alcotest.(check int) "first chunk only" 16 total;
      Alcotest.(check int) "granted pages accounted" (!free0 - 16)
        (K.free_pages kfs)
  | Some (Error e) ->
      Alcotest.failf "mid-batch transient was not absorbed: %s" (E.to_string e)
  | None -> Alcotest.fail "enlarge never ran");
  Alcotest.(check int) "enlarge metric paid once" 1 (K.enlarge_count kfs);
  Alcotest.(check int) "armed fault consumed" 0 (K.pending_transients kfs);
  Alcotest.(check int) "fault tripped exactly once" 1 (counter "fault.transient")

let test_delete () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/gone" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:5));
      let free_before = K.free_pages kfs in
      ok_or_fail (K.coffer_delete kfs c.Coffer.id);
      Alcotest.(check int) "8 pages reclaimed" (free_before + 8) (K.free_pages kfs);
      expect_err E.ENOENT (K.coffer_find kfs "/gone");
      (* Root coffer is protected. *)
      expect_err E.EBUSY (K.coffer_delete kfs (K.root_coffer kfs)))

let test_split () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/dir" ~ctype:zofs_ctype ~mode:0o666
             ~uid:1000 ~gid:1000)
      in
      let granted = ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:6) in
      let start, len = List.hd granted in
      Alcotest.(check int) "granted one run" 6 len;
      (* Move 4 of the new pages into a split coffer with a new mode. *)
      let moved = [ (start, 4) ] in
      let nc =
        ok_or_fail
          (K.coffer_split kfs ~src:c.Coffer.id ~new_path:"/dir/secret"
             ~ctype:zofs_ctype ~mode:0o600 ~uid:1000 ~gid:1000 ~runs:moved
             ~root_file:(start * Nvm.page_size)
             ~custom:((start + 1) * Nvm.page_size))
      in
      Alcotest.(check int) "src keeps 3+2" 5
        (A.coffer_page_count (K.alloc_table kfs) ~cid:c.Coffer.id);
      Alcotest.(check int) "new has 4+1root" 5
        (A.coffer_page_count (K.alloc_table kfs) ~cid:nc.Coffer.id);
      Alcotest.(check int) "registered" nc.Coffer.id
        (ok_or_fail (K.coffer_find kfs "/dir/secret"));
      Alcotest.(check int) "new mode" 0o600 nc.Coffer.mode)

let test_split_requires_ownership () =
  let _, _, kfs = mk () in
  as_user ~uid:1000 (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/notmine" ~ctype:zofs_ctype ~mode:0o666
             ~uid:55 ~gid:55)
      in
      let granted = ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:2) in
      expect_err E.EPERM
        (K.coffer_split kfs ~src:c.Coffer.id ~new_path:"/notmine/x"
           ~ctype:zofs_ctype ~mode:0o600 ~uid:55 ~gid:55 ~runs:granted
           ~root_file:0 ~custom:0))

let test_merge () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let a =
        ok_or_fail
          (K.coffer_new kfs ~path:"/m" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let b =
        ok_or_fail
          (K.coffer_new kfs ~path:"/m/sub" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_enlarge kfs b.Coffer.id ~n:4));
      ok_or_fail (K.coffer_merge kfs ~dst:a.Coffer.id ~src:b.Coffer.id);
      (* a absorbs b's 2 extra initial pages + 4 enlarged; b's root page is
         freed. *)
      Alcotest.(check int) "absorbed" 9
        (A.coffer_page_count (K.alloc_table kfs) ~cid:a.Coffer.id);
      expect_err E.ENOENT (K.coffer_find kfs "/m/sub"))

let test_merge_requires_same_perm () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let a =
        ok_or_fail
          (K.coffer_new kfs ~path:"/p1" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let b =
        ok_or_fail
          (K.coffer_new kfs ~path:"/p2" ~ctype:zofs_ctype ~mode:0o666 ~uid:1000
             ~gid:1000)
      in
      expect_err E.EPERM (K.coffer_merge kfs ~dst:a.Coffer.id ~src:b.Coffer.id))

let test_chmod_in_place () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/c" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      ok_or_fail (K.coffer_chmod kfs c.Coffer.id ~mode:0o640 ~uid:1000 ~gid:1000);
      let info = ok_or_fail (K.coffer_stat kfs c.Coffer.id) in
      Alcotest.(check int) "new mode" 0o640 info.Coffer.mode)

let test_rename_moves_descendants () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let top =
        ok_or_fail
          (K.coffer_new kfs ~path:"/top" ~ctype:zofs_ctype ~mode:0o777
             ~uid:1000 ~gid:1000)
      in
      let _child =
        ok_or_fail
          (K.coffer_new kfs ~path:"/top/child" ~ctype:zofs_ctype ~mode:0o600
             ~uid:1000 ~gid:1000)
      in
      ok_or_fail (K.coffer_rename kfs top.Coffer.id ~new_path:"/renamed");
      Alcotest.(check int) "top moved" top.Coffer.id
        (ok_or_fail (K.coffer_find kfs "/renamed"));
      expect_err E.ENOENT (K.coffer_find kfs "/top");
      expect_err E.ENOENT (K.coffer_find kfs "/top/child");
      ignore (ok_or_fail (K.coffer_find kfs "/renamed/child"));
      (* Root pages record the new paths. *)
      let info = ok_or_fail (K.coffer_stat kfs top.Coffer.id) in
      Alcotest.(check string) "root page path" "/renamed" info.Coffer.path)

let test_recover_reclaims_leaked_pages () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/r" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      let granted = ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:6) in
      let pages =
        List.concat_map (fun (s, l) -> List.init l (fun i -> s + i)) granted
      in
      let keep = [ List.nth pages 0; List.nth pages 1 ] in
      let runs = ok_or_fail (K.coffer_recover_begin kfs c.Coffer.id) in
      Alcotest.(check bool) "recover sees all runs" true (List.length runs >= 1);
      let info = ok_or_fail (K.coffer_stat kfs c.Coffer.id) in
      Alcotest.(check bool) "in recovery" true info.Coffer.in_recovery;
      (* While in recovery, mapping is refused. *)
      expect_err E.EBUSY (K.coffer_map kfs c.Coffer.id);
      let stat = ok_or_fail (K.coffer_stat kfs c.Coffer.id) in
      ok_or_fail
        (K.coffer_recover_end kfs c.Coffer.id
           ~in_use:
             (keep
             @ [
                 stat.Coffer.root_file / Nvm.page_size;
                 stat.Coffer.custom / Nvm.page_size;
               ]));
      (* 6 granted - 2 kept = 4 reclaimed; 3 original + 2 kept = 5 remain. *)
      Alcotest.(check int) "remaining pages" 5
        (A.coffer_page_count (K.alloc_table kfs) ~cid:c.Coffer.id);
      let info = ok_or_fail (K.coffer_stat kfs c.Coffer.id) in
      Alcotest.(check bool) "recovery done" false info.Coffer.in_recovery)

let test_remount_preserves_everything () =
  let dev, mpk, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/persist" ~ctype:zofs_ctype ~mode:0o640
             ~uid:1000 ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_enlarge kfs c.Coffer.id ~n:4)));
  (* Clean "reboot": volatile state dropped, remount from NVM. *)
  let kfs' = K.mount dev mpk in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs');
      Alcotest.(check int) "root rediscovered" (K.root_coffer kfs)
        (K.root_coffer kfs');
      let cid = ok_or_fail (K.coffer_find kfs' "/persist") in
      let info = ok_or_fail (K.coffer_stat kfs' cid) in
      Alcotest.(check int) "mode" 0o640 info.Coffer.mode;
      Alcotest.(check int) "uid" 1000 info.Coffer.uid;
      Alcotest.(check int) "7 pages" 7
        (A.coffer_page_count (K.alloc_table kfs') ~cid))

let test_file_mmap_validation () =
  let _, _, kfs = mk () in
  as_user (fun () ->
      ok_or_fail (K.fs_mount kfs);
      let c =
        ok_or_fail
          (K.coffer_new kfs ~path:"/mm" ~ctype:zofs_ctype ~mode:0o600 ~uid:1000
             ~gid:1000)
      in
      ignore (ok_or_fail (K.coffer_map kfs c.Coffer.id));
      let pages =
        [ c.Coffer.root_file / Nvm.page_size; c.Coffer.custom / Nvm.page_size ]
      in
      ok_or_fail (K.file_mmap kfs ~cid:c.Coffer.id ~pages);
      (* Pages of another coffer are rejected. *)
      expect_err E.EINVAL
        (K.file_mmap kfs ~cid:c.Coffer.id ~pages:[ K.root_coffer kfs ]))

let test_syscall_costs_time () =
  let _, _, kfs = mk () in
  let elapsed =
    as_user (fun () ->
        ok_or_fail (K.fs_mount kfs);
        let t0 = Sim.now () in
        ignore (K.coffer_stat kfs (K.root_coffer kfs));
        Sim.now () - t0)
  in
  Alcotest.(check bool) "costs at least the gate" true
    (elapsed >= Treasury.Gate.enter_cost + Treasury.Gate.exit_cost)

let () =
  Alcotest.run "kernfs"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "mkfs root coffer" `Quick test_mkfs_root_coffer;
          Alcotest.test_case "fs_mount required" `Quick test_fs_mount_required;
          Alcotest.test_case "remount" `Quick test_remount_preserves_everything;
          Alcotest.test_case "syscall cost" `Quick test_syscall_costs_time;
        ] );
      ( "coffer-create-delete",
        [
          Alcotest.test_case "new + find + locate" `Quick test_coffer_new_and_find;
          Alcotest.test_case "parent write checked" `Quick
            test_coffer_new_checks_parent_write;
          Alcotest.test_case "delete" `Quick test_delete;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "map grants access" `Quick test_coffer_map_grants_access;
          Alcotest.test_case "map denied" `Quick test_coffer_map_permission_denied;
          Alcotest.test_case "group read-only" `Quick
            test_coffer_map_readonly_for_group;
          Alcotest.test_case "15 regions max" `Quick test_map_exhausts_15_regions;
        ] );
      ( "space",
        [
          Alcotest.test_case "enlarge/shrink" `Quick test_enlarge_and_shrink;
          Alcotest.test_case "partial grant on exhaustion" `Quick
            test_enlarge_partial_on_exhaustion;
          Alcotest.test_case "mid-batch transient counted once" `Quick
            test_enlarge_midbatch_transient_counts_once;
          Alcotest.test_case "shrink validation" `Quick
            test_shrink_rejects_foreign_pages;
        ] );
      ( "split-merge-rename",
        [
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "split ownership" `Quick test_split_requires_ownership;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "merge same perm" `Quick test_merge_requires_same_perm;
          Alcotest.test_case "chmod in place" `Quick test_chmod_in_place;
          Alcotest.test_case "rename descendants" `Quick
            test_rename_moves_descendants;
        ] );
      ( "recovery+mmap",
        [
          Alcotest.test_case "recover reclaims" `Quick
            test_recover_reclaims_leaked_pages;
          Alcotest.test_case "file_mmap" `Quick test_file_mmap_validation;
        ] );
    ]
