(* Tests for the crash model checker (lib/crashmc): the oracle model's
   semantics, the no-crash oracle/ZoFS agreement property (any drift here
   would poison every crash verdict), exhaustive crash-point sweeps over
   short targeted histories — including the two recovery edge cases the
   checker was built to reach: a crash mid coffer split (cross-coffer
   rename migration) and a crash mid directory growth — and the
   missing-fence negative check that proves the checker can see the bug
   class it exists for. *)

module C = Crashmc
module M = Crashmc.Model
module Op = Workloads.Opscript
module E = Treasury.Errno

let ok = Alcotest.(check bool) "ok" true
let errs e r = Alcotest.(check bool) (E.to_string e) true (r = Error e)

(* ---- the oracle model ---------------------------------------------------- *)

let test_model_semantics () =
  let m = M.create () in
  ok (M.apply m (Op.Mkdir "/d") = Ok ());
  errs E.EEXIST (M.apply m (Op.Mkdir "/d"));
  errs E.EISDIR (M.apply m (Op.Create { path = "/d"; mode = 0o644; data = "x" }));
  errs E.ENOENT (M.apply m (Op.Mkdir "/no/such/dir"));
  ok (M.apply m (Op.Create { path = "/d/f"; mode = 0o644; data = "hello" }) = Ok ());
  errs E.ENOTDIR (M.apply m (Op.Mkdir "/d/f/sub"));
  (* pwrite past EOF zero-fills the gap *)
  ok (M.apply m (Op.Pwrite { path = "/d/f"; off = 8; data = "zz" }) = Ok ());
  ok (M.apply m (Op.Append { path = "/d/f"; data = "!" }) = Ok ());
  (match List.assoc_opt "/d/f" (M.dump m) with
  | Some (`File c) ->
      Alcotest.(check string) "pwrite gap + append" "hello\000\000\000zz!" c
  | _ -> Alcotest.fail "/d/f missing from dump");
  errs E.ENOTEMPTY (M.apply m (Op.Rmdir "/d"));
  errs E.EISDIR (M.apply m (Op.Unlink "/d"));
  errs E.EINVAL (M.apply m (Op.Rename { src = "/d"; dst = "/d/inside" }));
  ok (M.apply m (Op.Rename { src = "/d/f"; dst = "/g" }) = Ok ());
  ok (M.apply m (Op.Rmdir "/d") = Ok ());
  ok (M.apply m (Op.Unlink "/g") = Ok ());
  Alcotest.(check (list string)) "empty after teardown" []
    (List.map M.entry_to_string (M.dump m))

let test_model_copy_is_independent () =
  let a = M.create () in
  ok (M.apply a (Op.Mkdir "/d") = Ok ());
  ok (M.apply a (Op.Create { path = "/d/f"; mode = 0o644; data = "one" }) = Ok ());
  let b = M.copy a in
  ok (M.apply b (Op.Create { path = "/d/f"; mode = 0o644; data = "two" }) = Ok ());
  ok (M.apply b (Op.Mkdir "/e") = Ok ());
  (match List.assoc_opt "/d/f" (M.dump a) with
  | Some (`File c) -> Alcotest.(check string) "original untouched" "one" c
  | _ -> Alcotest.fail "/d/f missing");
  Alcotest.(check bool) "copies diverged" false (M.equal a b)

(* ---- no-crash agreement (the property the whole checker rests on) ------- *)

(* For seeded random op sequences, replaying the script against real ZoFS
   with no crash must land on exactly the oracle's final tree: same paths,
   same kinds, same file contents. *)
let test_no_crash_oracle_agreement () =
  List.iter
    (fun seed ->
      let s =
        Testkit.random_script ~max_len:600 ~seed:(Int64.of_int seed) ~nops:30 ()
      in
      let w = C.prepare s in
      let rp = C.replay w in
      let fs_dump =
        match rp.C.rp_dump with
        | Some d -> d
        | None -> Alcotest.fail "no-crash replay produced no dump"
      in
      let model_dump = M.dump w.C.w_models.(Array.length w.C.w_body) in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d" seed)
        (List.map M.entry_to_string model_dump)
        (List.map M.entry_to_string fs_dump))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---- exhaustive sweeps over short targeted histories --------------------- *)

let assert_clean name (rep : C.report) =
  Alcotest.(check (list string)) (name ^ ": no divergences") []
    (List.map (fun d -> d.C.d_reason) rep.C.r_divergences);
  Alcotest.(check int) (name ^ ": exhaustive") rep.C.r_events rep.C.r_points

(* Every crash point of a single create — including the window between the
   inode publish and the dentry insert — must recover to a state the oracle
   tolerates. *)
let test_exhaustive_create () =
  let s =
    {
      Op.sname = "unit-create";
      setup = [ Op.Mkdir "/d" ];
      body = [ Op.Create { path = "/d/f"; mode = 0o644; data = "hello world" } ];
    }
  in
  assert_clean "create" (C.check s)

(* Crash mid coffer split: renaming a private (0600) file into another
   directory migrates its pages through a transient coffer (split → link →
   merge → retarget).  Every interruption point must leave at least one
   durable name for the file and recover cleanly. *)
let test_exhaustive_coffer_split_rename () =
  let s =
    {
      Op.sname = "unit-split-rename";
      setup =
        [
          Op.Mkdir "/a";
          Op.Mkdir "/c";
          Op.Create { path = "/a/pub"; mode = 0o600; data = String.make 600 'p' };
        ];
      body = [ Op.Rename { src = "/a/pub"; dst = "/c/pub" } ];
    }
  in
  assert_clean "split-rename" (C.check s)

(* Crash mid directory growth: the setup fills a directory past its inline
   dentry slots so the body inserts allocate and link fresh dentry chain
   pages mid-op. *)
let test_exhaustive_directory_growth () =
  let s =
    {
      Op.sname = "unit-dir-growth";
      setup =
        Op.Mkdir "/d"
        :: List.init 20 (fun i ->
               Op.Create
                 { path = Printf.sprintf "/d/f%02d" i; mode = 0o644; data = "x" });
      body =
        List.init 4 (fun i ->
            Op.Create
              { path = Printf.sprintf "/d/g%d" i; mode = 0o644; data = "grow" });
    }
  in
  assert_clean "dir-growth" (C.check s)

(* The fence-elided append commit path (lib/zofs/pbatch.ml): appends that
   stay inside a page, cross into a fresh page (allocation + pointer link
   mid-op), and follow a just-grown file.  Every crash point of the
   coalesced flush/single-barrier sequence must recover to an
   oracle-tolerated state. *)
let test_exhaustive_batched_append () =
  let s =
    {
      Op.sname = "unit-batched-append";
      setup =
        [ Op.Create { path = "/f"; mode = 0o644; data = String.make 3900 'a' } ];
      body =
        [
          Op.Append { path = "/f"; data = String.make 120 'b' };
          Op.Append { path = "/f"; data = String.make 300 'c' };
          Op.Append { path = "/f"; data = String.make 80 'd' };
        ];
    }
  in
  assert_clean "batched-append" (C.check s)

(* The coalesced same-directory rename (the MWRL op): dentry remove + insert
   under one inode lease, fences elided down to the publish points. *)
let test_exhaustive_rename_samedir () =
  let s =
    {
      Op.sname = "unit-rename-samedir";
      setup =
        [
          Op.Mkdir "/d";
          Op.Create { path = "/d/r0"; mode = 0o644; data = "zero" };
          Op.Create { path = "/d/r1"; mode = 0o644; data = "one" };
        ];
      body =
        [
          Op.Rename { src = "/d/r0"; dst = "/d/rn0" };
          Op.Rename { src = "/d/r1"; dst = "/d/rn1" };
        ];
    }
  in
  assert_clean "rename-samedir" (C.check s)

(* Two PROCESSES sharing a file and a directory (ISSUE 9): body op [i] is
   issued by process [i mod 2] through that process's own FSLib, so every
   op reads state the OTHER process just published, and the sweep explores
   crash points landing exactly between one process's publish (its last
   fenced line) and the other's read of it.  Recovery must converge to an
   oracle-tolerated state from every one of them. *)
let test_exhaustive_two_process_shared () =
  let s =
    {
      Op.sname = "unit-two-proc-shared";
      setup =
        [
          Op.Mkdir "/d";
          Op.Create
            { path = "/d/shared"; mode = 0o644; data = String.make 200 's' };
        ];
      body =
        [
          (* P0 *) Op.Append { path = "/d/shared"; data = String.make 90 'A' };
          (* P1 *) Op.Append { path = "/d/shared"; data = String.make 90 'B' };
          (* P0 *) Op.Create { path = "/d/c0"; mode = 0o644; data = "zero" };
          (* P1 *) Op.Create { path = "/d/c1"; mode = 0o644; data = "one" };
          (* P0 *) Op.Append { path = "/d/shared"; data = String.make 90 'C' };
          (* P1 *) Op.Rename { src = "/d/c0"; dst = "/d/c0r" };
        ];
    }
  in
  assert_clean "two-proc-shared" (C.check ~procs:2 s)

(* The same two-process body must also agree with the oracle when no crash
   happens at all — cross-process visibility through separate FSLibs is
   exactly the property the dispatcher's shared-NVM mappings promise. *)
let test_two_process_no_crash_agreement () =
  let s =
    {
      Op.sname = "unit-two-proc-agree";
      setup = [ Op.Mkdir "/d" ];
      body =
        [
          Op.Create { path = "/d/f"; mode = 0o644; data = "base" };
          Op.Append { path = "/d/f"; data = "+p1" };
          Op.Append { path = "/d/f"; data = "+p0" };
          Op.Mkdir "/d/sub";
          Op.Rename { src = "/d/f"; dst = "/d/sub/f" };
        ];
    }
  in
  let w = C.prepare s in
  let rp = C.replay ~procs:2 w in
  let fs_dump =
    match rp.C.rp_dump with
    | Some d -> d
    | None -> Alcotest.fail "two-process no-crash replay produced no dump"
  in
  let model_dump = M.dump w.C.w_models.(Array.length w.C.w_body) in
  Alcotest.(check (list string))
    "two-process tree equals oracle"
    (List.map M.entry_to_string model_dump)
    (List.map M.entry_to_string fs_dump)

(* A short mixed history exercising every op kind the oracle models. *)
let test_exhaustive_mixed_ops () =
  let s =
    {
      Op.sname = "unit-mixed";
      setup = [ Op.Mkdir "/d"; Op.Create { path = "/d/a"; mode = 0o644; data = "aa" } ];
      body =
        [
          Op.Mkdir "/d/sub";
          Op.Append { path = "/d/a"; data = "bb" };
          Op.Rename { src = "/d/a"; dst = "/d/sub/a" };
          Op.Pwrite { path = "/d/sub/a"; off = 1; data = "XY" };
          Op.Unlink "/d/sub/a";
          Op.Rmdir "/d/sub";
        ];
    }
  in
  assert_clean "mixed" (C.check s)

(* ---- the negative check -------------------------------------------------- *)

(* A deliberately dropped fence (acknowledged op whose lines never reach
   NVM) must be reported as a divergence — otherwise the checker is blind
   to its entire reason for existing. *)
let test_missing_fence_is_caught () =
  match C.check_missing_fence (Op.find "fslab") with
  | Some _reason -> ()
  | None -> Alcotest.fail "injected missing fence was not caught"

(* The persist batcher's own negative knob: [Zofs.Pbatch.over_elide] makes
   [Pbatch.barrier] drop fences it knows are needed — an over-aggressive
   optimizer.  Both independent auditors must catch the resulting bug
   class; if either goes quiet, an elision bug could ship silently. *)

(* 1. The persistence checker: publish points see lines flushed but never
   fenced, and flag missing-fence. *)
let test_over_elide_flagged_by_persistence_checker () =
  Check.enable_auto ~persist:Check.Log ~guideline:Check.Off ~lock:Check.Off;
  Check.reset_report ();
  Zofs.Pbatch.over_elide := true;
  Fun.protect
    ~finally:(fun () ->
      Zofs.Pbatch.over_elide := false;
      Check.disable_auto ();
      Check.detach ();
      Check.reset_report ())
    (fun () ->
      Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
          let inst = Workloads.Fslab.make ~pages:2048 Workloads.Fslab.Zofs in
          let fs = inst.Workloads.Fslab.fs in
          let module V = Treasury.Vfs in
          ignore (V.mkdir fs "/d" 0o755);
          ignore (V.write_file fs "/d/f" "hello");
          ignore (V.append_file fs "/d/f" (String.make 200 'x'));
          ignore (V.rename fs "/d/f" "/d/g"));
      let rules =
        List.map (fun v -> v.Check.v_rule) (Check.report ()).Check.r_violations
      in
      Alcotest.(check bool)
        (Printf.sprintf "missing-fence flagged (saw: %s)"
           (String.concat "," rules))
        true
        (List.mem "missing-fence" rules))

(* 2. The crash model checker: some crash point now loses an acknowledged
   op (its lines were flushed but never ordered), and recovery lands on a
   state the oracle rejects. *)
let test_over_elide_caught_by_crashmc () =
  Zofs.Pbatch.over_elide := true;
  Fun.protect
    ~finally:(fun () -> Zofs.Pbatch.over_elide := false)
    (fun () ->
      let s =
        {
          Op.sname = "unit-over-elide";
          setup = [ Op.Mkdir "/d" ];
          body =
            [
              Op.Create { path = "/d/f"; mode = 0o644; data = "hello" };
              Op.Append { path = "/d/f"; data = String.make 150 'w' };
            ];
        }
      in
      let rep = C.check s in
      Alcotest.(check bool) "crashmc reports divergences" true
        (rep.C.r_divergences <> []))

let () =
  Alcotest.run "crashmc"
    [
      ( "model",
        [
          Alcotest.test_case "op semantics" `Quick test_model_semantics;
          Alcotest.test_case "copy independence" `Quick
            test_model_copy_is_independent;
        ] );
      ( "oracle-agreement",
        [
          Alcotest.test_case "no-crash dumps agree (seeded)" `Quick
            test_no_crash_oracle_agreement;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "single create" `Quick test_exhaustive_create;
          Alcotest.test_case "coffer split rename" `Slow
            test_exhaustive_coffer_split_rename;
          Alcotest.test_case "directory growth" `Slow
            test_exhaustive_directory_growth;
          Alcotest.test_case "batched append" `Slow
            test_exhaustive_batched_append;
          Alcotest.test_case "same-dir rename" `Slow
            test_exhaustive_rename_samedir;
          Alcotest.test_case "mixed ops" `Slow test_exhaustive_mixed_ops;
          Alcotest.test_case "two-process no-crash agreement" `Quick
            test_two_process_no_crash_agreement;
          Alcotest.test_case "two-process shared append + create" `Slow
            test_exhaustive_two_process_shared;
        ] );
      ( "negative",
        [
          Alcotest.test_case "missing fence caught" `Quick
            test_missing_fence_is_caught;
          Alcotest.test_case "over-elided fence: persistence checker" `Quick
            test_over_elide_flagged_by_persistence_checker;
          Alcotest.test_case "over-elided fence: crashmc" `Slow
            test_over_elide_caught_by_crashmc;
        ] );
    ]
