(* Runtime robustness: media-error injection, thread-kill injection,
   lease-steal repair of intention records, and the chaos campaign itself
   (smoke run + quarantine-disabled negative self-check). *)

module D = Nvm.Device
module K = Treasury.Kernfs
module V = Treasury.Vfs
module E = Treasury.Errno

let obs_on () = if not (Obs.enabled ()) then Obs.enable ~spans:false ()

let counter_delta snap0 name =
  let d = Obs.Snapshot.diff snap0 (Obs.Snapshot.take ()) in
  Option.value ~default:0 (Obs.Snapshot.counter_value d name)

(* ---- media-error injection ---------------------------------------------- *)

let test_poison_scrub_on_write () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * Nvm.page_size) () in
  D.write_u64 dev 512 0xABCD;
  D.inject_poison dev 512;
  (match D.read_u64 dev 512 with
  | _ -> Alcotest.fail "poisoned load did not fault"
  | exception Nvm.Fault { kind = Nvm.Media; _ } -> ());
  Alcotest.(check int) "media fault counted" 1 (D.stat_media_faults dev);
  (* an ordinary store scrubs non-sticky poison *)
  D.write_u64 dev 512 7;
  Alcotest.(check bool) "store scrubbed the line" false (D.is_poisoned dev 512);
  Alcotest.(check int) "line readable again" 7 (D.read_u64 dev 512)

let test_poison_sticky () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4 * Nvm.page_size) () in
  D.inject_poison ~sticky:true dev 1024;
  D.write_u64 dev 1024 1;
  Alcotest.(check bool) "sticky survives a store" true (D.is_poisoned dev 1024);
  (match D.read_u64 dev 1024 with
  | _ -> Alcotest.fail "sticky poisoned load did not fault"
  | exception Nvm.Fault { kind = Nvm.Media; _ } -> ());
  D.clear_poison dev 1024;
  Alcotest.(check bool) "clear_poison heals sticky" false
    (D.is_poisoned dev 1024);
  Alcotest.(check int) "no poisoned lines left" 0 (D.poisoned_lines dev)

(* ---- thread-kill injection ---------------------------------------------- *)

let test_kill_fires () =
  let w = Sim.create ~seed:3L () in
  let finished = ref false and killed = ref (-1) in
  let tid =
    Sim.spawn_tid w ~name:"victim" (fun () ->
        for _ = 1 to 100 do
          Sim.advance 10
        done;
        finished := true)
  in
  Sim.spawn w ~name:"killer" (fun () -> Sim.arm_kill ~tid ~after:5);
  Sim.spawn w ~at:100_000 ~name:"observer" (fun () ->
      killed := Sim.killed_threads ());
  Sim.run w;
  Alcotest.(check bool) "victim did not finish" false !finished;
  Alcotest.(check int) "one thread killed" 1 !killed

let test_no_kill_defers () =
  let w = Sim.create ~seed:4L () in
  let region_done = ref false and after_region = ref false in
  let killed = ref (-1) in
  let tid =
    Sim.spawn_tid w ~name:"victim" (fun () ->
        Sim.with_no_kill (fun () ->
            for _ = 1 to 20 do
              Sim.advance 10
            done;
            region_done := true);
        for _ = 1 to 20 do
          Sim.advance 10
        done;
        after_region := true)
  in
  Sim.spawn w ~name:"killer" (fun () -> Sim.arm_kill ~tid ~after:5);
  Sim.spawn w ~at:100_000 ~name:"observer" (fun () ->
      killed := Sim.killed_threads ());
  Sim.run w;
  Alcotest.(check bool) "protected region ran to completion" true !region_done;
  Alcotest.(check bool) "death landed after the region" false !after_region;
  Alcotest.(check int) "one thread killed" 1 !killed

(* ---- lease steal: stale holder cannot clobber --------------------------- *)

let test_stale_release_cannot_clobber () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let dev = D.create ~perf:Nvm.Perf.free ~size:Nvm.page_size () in
  let addr = 512 in
  let w = Sim.create ~seed:5L () in
  let a_acquired = ref false and b_stole = ref false in
  let b_code = ref 0 in
  Sim.spawn w ~name:"holder" (fun () ->
      Zofs.Lease.acquire ~duration:1_000 dev addr;
      a_acquired := true;
      while not !b_stole do
        Sim.advance 50
      done;
      (* the stale holder's release must see the steal, not zero the word *)
      Zofs.Lease.release dev addr);
  Sim.spawn w ~name:"stealer" (fun () ->
      while not !a_acquired do
        Sim.advance 50
      done;
      Sim.advance 2_000 (* let the holder's 1 µs lease expire *);
      Zofs.Lease.acquire ~duration:1_000_000 dev addr;
      b_code := Sim.self_tid () + 2;
      b_stole := true);
  Sim.run w;
  let word = D.read_u64 dev addr in
  Alcotest.(check bool) "stolen lease survived the stale release" true
    (word <> 0 && word land 0xFFFF = !b_code);
  Alcotest.(check bool) "steal counted" true
    (counter_delta snap0 "lease.steals" >= 1);
  Alcotest.(check bool) "stale holder detected the steal" true
    (counter_delta snap0 "lease.stolen_detected" >= 1)

(* ---- lease-holder death in a live µFS ----------------------------------- *)

(* ZoFS + FSLib built inside the calling sim thread (the dispatcher's repair
   hook wired like the chaos campaign does). *)
let mk_zofs () =
  let dev =
    D.create ~perf:Nvm.Perf.optane ~size:(1024 * Nvm.page_size) ()
  in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~nbuckets:256 ~root_ctype:Zofs.Ufs.ctype ~root_mode:0o777
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  Treasury.Dispatcher.set_repair disp (fun cid ->
      Zofs.Recovery.recover_one kfs cid);
  (dev, kfs, Treasury.Dispatcher.as_vfs disp)

(* Spawn [op] in a victim thread, arm a kill, and pump the world until the
   victim finishes or dies.  Returns [true] if the kill landed. *)
let kill_one_attempt w proc ~after fails op =
  let finished = ref false in
  let k0 = Sim.killed_threads () in
  let tid =
    Sim.spawn_tid w ~proc ~name:"victim" (fun () ->
        (try ignore (op ())
         with e -> fails ("exception escaped: " ^ Printexc.to_string e));
        finished := true)
  in
  Sim.arm_kill ~tid ~after;
  let budget = ref 100_000 in
  while (not !finished) && Sim.killed_threads () = k0 && !budget > 0 do
    decr budget;
    Sim.advance 100
  done;
  if !finished then begin
    Sim.disarm_kill ~tid;
    false
  end
  else if Sim.killed_threads () > k0 then true
  else begin
    fails "victim thread neither finished nor died";
    false
  end

(* A FSLibs instance for the CALLING process (fs_mount registers the pid of
   the sim thread that runs this): cross-process tests give every simulated
   process its own dispatcher + FD table this way. *)
let mk_fslib kfs =
  let disp = Treasury.Dispatcher.create kfs in
  let ufs = Zofs.Ufs.create kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  Treasury.Dispatcher.set_repair disp (fun cid ->
      Zofs.Recovery.recover_one kfs cid);
  Treasury.Dispatcher.as_vfs disp

let orig = String.make 120 'o'
let vblock = String.make 80 'V'
let dblock = String.make 40 'D'

(* Content must be [orig] followed by whole victim/driver blocks: a torn
   tail (partial block visible) means a dead holder's half-done append
   leaked past the size rollback. *)
let untorn s =
  let n = String.length s in
  n >= 120
  && String.sub s 0 120 = orig
  &&
  let rec go i =
    if i = n then true
    else if i + 80 <= n && String.sub s i 80 = vblock then go (i + 80)
    else if i + 40 <= n && String.sub s i 40 = dblock then go (i + 40)
    else false
  in
  go 120

let test_kill_mid_append_steal_repairs () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed:6L () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let kills = ref 0 and stole = ref false in
  Sim.spawn w ~proc ~name:"driver" (fun () ->
      let _dev, _kfs, fs = mk_zofs () in
      (match V.write_file fs "/f" orig with
      | Ok () -> ()
      | Error e -> fails ("setup: " ^ E.to_string e));
      (* Kill appenders at ever-later points, sweeping through the whole
         mutation, until a death lands inside the size-intention window (the
         follow-up append then steals the lease and repairs the record). *)
      let repaired () =
        counter_delta snap0 "lease.steals_repaired" >= 1
        || counter_delta snap0 "intent.repairs" >= 1
      in
      let attempt = ref 0 in
      while (not (repaired ())) && !attempt < 200 && !failures = [] do
        incr attempt;
        if
          kill_one_attempt w proc ~after:(1 + !attempt) fails (fun () ->
              V.append_file fs "/f" vblock)
        then begin
          incr kills;
          (* the next op on the inode steals the dead holder's lease and
             rolls any pending size intention back *)
          (match V.append_file fs "/f" dblock with
          | Ok () -> ()
          | Error e -> fails ("follow-up append: " ^ E.to_string e));
          if counter_delta snap0 "lease.steals" >= 1 then stole := true
        end
      done;
      match V.read_file fs "/f" with
      | Ok d ->
          if not (untorn d) then
            fails
              (Printf.sprintf "torn content (%d bytes) after %d kills"
                 (String.length d) !kills)
      | Error e -> fails ("final read: " ^ E.to_string e));
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "at least one kill landed" true (!kills >= 1);
  Alcotest.(check bool) "a lease steal was observed" true !stole;
  Alcotest.(check bool) "size intention rolled back at least once" true
    (counter_delta snap0 "lease.steals_repaired" >= 1
    || counter_delta snap0 "intent.repairs" >= 1)

(* A death anywhere in a shrinking truncate: whatever residue it leaves
   (pending Trunc intention, half-walked block pointers), a redo must
   converge on the target state and offline fsck must reach a clean
   fixpoint. *)
let test_kill_mid_truncate_converges () =
  obs_on ();
  let w = Sim.create ~seed:8L () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let kills = ref 0 in
  let fixpoint = ref true in
  Sim.spawn w ~proc ~name:"driver" (fun () ->
      let _dev, kfs, fs = mk_zofs () in
      let big = String.init 9000 (fun i -> Char.chr (97 + (i mod 26))) in
      (match V.write_file fs "/g" big with
      | Ok () -> ()
      | Error e -> fails ("setup: " ^ E.to_string e));
      (* ftruncate records a packed Trunc intention before touching layout
         (file.ml): a death mid-shrink must surface as a graceful error or a
         consistent state, never an exception or torn metadata. *)
      let attempt = ref 0 in
      while !kills = 0 && !attempt < 80 && !failures = [] do
        incr attempt;
        if
          kill_one_attempt w proc ~after:(2 + (4 * !attempt)) fails (fun () ->
              V.truncate fs "/g" 100)
        then incr kills
      done;
      (* later callers: graceful errno or success, and a redo converges *)
      (match V.truncate fs "/g" 100 with
      | Ok () | Error _ -> ());
      (match V.read_file fs "/g" with
      | Ok d ->
          if String.length d <> 100 || String.sub d 0 100 <> String.sub big 0 100
          then fails "truncate redo did not converge"
      | Error e -> fails ("final read: " ^ E.to_string e));
      (* offline fsck must reach a clean fixpoint over the residue *)
      ignore (Zofs.Recovery.recover_all kfs);
      let rep2 = Zofs.Recovery.recover_all kfs in
      fixpoint := Zofs.Recovery.findings rep2 = []);
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "at least one kill landed" true (!kills >= 1);
  Alcotest.(check bool) "fsck fixpoint clean after kill residue" true !fixpoint

(* Sweep kills through ever-later points of a shrinking truncate until one
   lands inside the Trunc-intention window (intention recorded, not yet
   cleared).  The next lease taker must then steal the dead holder's lease
   and roll the truncate FORWARD (intent.ml): the observable state is the
   post-truncate one, never a torn in-between. *)
let test_kill_mid_ftruncate_steal_rolls_forward () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed:9L () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let kills = ref 0 in
  Sim.spawn w ~proc ~name:"driver" (fun () ->
      let _dev, _kfs, fs = mk_zofs () in
      let big = String.init 9000 (fun i -> Char.chr (97 + (i mod 26))) in
      let repaired () = counter_delta snap0 "intent.repairs" >= 1 in
      let attempt = ref 0 in
      while (not (repaired ())) && !attempt < 250 && !failures = [] do
        incr attempt;
        (* Reset to the full file each round; when the previous round's
           victim died holding the lease, this write is the "next op" that
           steals it and repairs the pending intention. *)
        (match V.write_file fs "/t" big with
        | Ok () -> ()
        | Error e -> fails ("reset write: " ^ E.to_string e));
        if
          kill_one_attempt w proc ~after:(2 + (2 * !attempt)) fails (fun () ->
              V.truncate fs "/t" 2000)
        then incr kills
      done;
      (* converge and verify the roll-forward left no torn middle state *)
      (match V.truncate fs "/t" 2000 with Ok () | Error _ -> ());
      match V.read_file fs "/t" with
      | Ok d ->
          if String.length d <> 2000 || d <> String.sub big 0 2000 then
            fails
              (Printf.sprintf "content torn after %d kills (%d bytes)" !kills
                 (String.length d))
      | Error e -> fails ("final read: " ^ E.to_string e));
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "at least one kill landed" true (!kills >= 1);
  Alcotest.(check bool) "a lease steal was observed" true
    (counter_delta snap0 "lease.steals" >= 1);
  Alcotest.(check bool) "the Trunc intention was rolled forward" true
    (counter_delta snap0 "intent.repairs" >= 1)

(* ---- cross-process whole-process kills ---------------------------------- *)

(* Process A (its own pid, its own FSLib) dies as a unit — every thread
   killed at its next suspension point by [Sim.kill_process] — while
   appending.  Process B reaps the dead pid, and B's next append on the same
   file steals the dead holder's lease and rolls the pending size intention
   back: the file never shows a torn tail, even though repairer and victim
   never shared a process. *)
let test_cross_process_kill_mid_append_steal_repairs () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed:16L () in
  let proc_b = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let kills = ref 0 and reaps = ref 0 in
  Sim.spawn w ~proc:proc_b ~name:"process-B" (fun () ->
      let _dev, kfs, fs = mk_zofs () in
      (match V.write_file fs "/f" orig with
      | Ok () -> ()
      | Error e -> fails ("setup: " ^ E.to_string e));
      let repaired () =
        counter_delta snap0 "lease.steals_repaired" >= 1
        || counter_delta snap0 "intent.repairs" >= 1
      in
      let attempt = ref 0 in
      while (not (repaired ())) && !attempt < 200 && !failures = [] do
        incr attempt;
        let proc_a = Sim.Proc.create ~uid:0 ~gid:0 () in
        let pid = proc_a.Sim.Proc.pid in
        let ready = ref false in
        ignore
          (Sim.spawn_tid w ~proc:proc_a ~name:"A-appender" (fun () ->
               let fs_a = mk_fslib kfs in
               ready := true;
               try
                 match V.append_file fs_a "/f" vblock with Ok () | Error _ -> ()
               with e ->
                 fails ("exception escaped in A: " ^ Printexc.to_string e)));
        (* wait for A's FSLib, then sweep the kill point through the append *)
        let budget = ref 100_000 in
        while (not !ready) && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if not !ready then fails "process A never became ready";
        for _ = 1 to !attempt do
          Sim.advance 75
        done;
        let k0 = Sim.killed_threads () in
        Sim.kill_process ~pid;
        let budget = ref 100_000 in
        while Sim.proc_alive pid && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if Sim.proc_alive pid then
          fails "process A still alive after kill budget"
        else begin
          if Sim.killed_threads () > k0 then incr kills;
          (match K.reap_process kfs ~pid with
          | Ok () -> incr reaps
          | Error e -> fails ("reap: " ^ E.to_string e));
          (* B's op on the shared file is the cross-process stealer *)
          match V.append_file fs "/f" dblock with
          | Ok () -> ()
          | Error e -> fails ("B append: " ^ E.to_string e)
        end
      done;
      match V.read_file fs "/f" with
      | Ok d ->
          if not (untorn d) then
            fails
              (Printf.sprintf "torn content (%d bytes) after %d process kills"
                 (String.length d) !kills)
      | Error e -> fails ("final read: " ^ E.to_string e));
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "at least one whole-process kill landed" true
    (!kills >= 1);
  Alcotest.(check bool) "every dead pid was reaped" true (!reaps >= !kills);
  Alcotest.(check bool) "a dead-holder steal crossed processes" true
    (counter_delta snap0 "lease.steals_dead_holder" >= 1);
  Alcotest.(check bool) "size intention rolled back at least once" true
    (counter_delta snap0 "lease.steals_repaired" >= 1
    || counter_delta snap0 "intent.repairs" >= 1)

(* Same shape for ftruncate: the Trunc intention of a whole dead PROCESS
   must be rolled FORWARD by another process — the observable state is the
   post-truncate one, never a torn in-between. *)
let test_cross_process_kill_mid_ftruncate_rolls_forward () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed:18L () in
  let proc_b = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let kills = ref 0 in
  Sim.spawn w ~proc:proc_b ~name:"process-B" (fun () ->
      let _dev, kfs, fs = mk_zofs () in
      let big = String.init 9000 (fun i -> Char.chr (97 + (i mod 26))) in
      let repaired () = counter_delta snap0 "intent.repairs" >= 1 in
      let attempt = ref 0 in
      while (not (repaired ())) && !attempt < 200 && !failures = [] do
        incr attempt;
        (* B's reset write doubles as the stealer of the previous round's
           dead-process lease *)
        (match V.write_file fs "/t" big with
        | Ok () -> ()
        | Error e -> fails ("reset write: " ^ E.to_string e));
        let proc_a = Sim.Proc.create ~uid:0 ~gid:0 () in
        let pid = proc_a.Sim.Proc.pid in
        let ready = ref false in
        ignore
          (Sim.spawn_tid w ~proc:proc_a ~name:"A-truncator" (fun () ->
               let fs_a = mk_fslib kfs in
               ready := true;
               try match V.truncate fs_a "/t" 2000 with Ok () | Error _ -> ()
               with e ->
                 fails ("exception escaped in A: " ^ Printexc.to_string e)));
        let budget = ref 100_000 in
        while (not !ready) && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if not !ready then fails "process A never became ready";
        for _ = 1 to !attempt do
          Sim.advance 75
        done;
        let k0 = Sim.killed_threads () in
        Sim.kill_process ~pid;
        let budget = ref 100_000 in
        while Sim.proc_alive pid && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if Sim.proc_alive pid then
          fails "process A still alive after kill budget"
        else begin
          if Sim.killed_threads () > k0 then incr kills;
          match K.reap_process kfs ~pid with
          | Ok () -> ()
          | Error e -> fails ("reap: " ^ E.to_string e)
        end
      done;
      (match V.truncate fs "/t" 2000 with Ok () | Error _ -> ());
      match V.read_file fs "/t" with
      | Ok d ->
          if String.length d <> 2000 || d <> String.sub big 0 2000 then
            fails
              (Printf.sprintf "content torn after %d process kills (%d bytes)"
                 !kills (String.length d))
      | Error e -> fails ("final read: " ^ E.to_string e));
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "at least one whole-process kill landed" true
    (!kills >= 1);
  Alcotest.(check bool) "the Trunc intention was rolled forward" true
    (counter_delta snap0 "intent.repairs" >= 1)

(* Acceptance (ISSUE 9): every thread of a lease-holding process is killed
   while >= 4 other processes hammer the same coffer; the hammers steal the
   dead pid's lease, the dead pid is reaped, no write is ever torn, and the
   offline fsck over the residue is a clean fixpoint. *)
let test_whole_process_kill_under_hammer () =
  obs_on ();
  let snap0 = Obs.Snapshot.take () in
  let w = Sim.create ~seed:17L () in
  let proc_d = Sim.Proc.create ~uid:0 ~gid:0 () in
  let failures = ref [] in
  let fails m = failures := m :: !failures in
  let stop = ref false in
  let hammer_ops = ref 0 in
  let proc_killed = ref false and reaped = ref false in
  let fixpoint = ref false in
  Sim.spawn w ~proc:proc_d ~name:"driver" (fun () ->
      let _dev, kfs, fs = mk_zofs () in
      (match V.write_file fs "/f" orig with
      | Ok () -> ()
      | Error e -> fails ("setup: " ^ E.to_string e));
      (* >= 4 hammer processes, each with its own FSLib, same coffer *)
      let hammer_tids =
        List.init 4 (fun i ->
            let hproc = Sim.Proc.create ~uid:0 ~gid:0 () in
            Sim.spawn_tid w ~proc:hproc
              ~name:(Printf.sprintf "hammer-%d" i)
              (fun () ->
                let hfs = mk_fslib kfs in
                while not !stop do
                  (match V.append_file hfs "/f" dblock with
                  | Ok () -> incr hammer_ops
                  | Error e -> fails ("hammer append: " ^ E.to_string e)
                  | exception e ->
                      fails ("hammer raised: " ^ Printexc.to_string e));
                  (* think time: keeps the lease mostly free so the victims
                     actually HOLD it (not just spin on it) when killed *)
                  Sim.advance 4_000
                done))
      in
      (* fresh victim processes (two appender threads each) until a kill
         lands while the pid holds the file lease, proven by a hammer
         stealing from a holder whose threads are all dead *)
      let attempt = ref 0 in
      while
        counter_delta snap0 "lease.steals_dead_holder" < 1
        && !attempt < 120 && !failures = []
      do
        incr attempt;
        let vproc = Sim.Proc.create ~uid:0 ~gid:0 () in
        let pid = vproc.Sim.Proc.pid in
        let spawn_appender () =
          ignore
            (Sim.spawn_tid w ~proc:vproc ~name:"victim-appender" (fun () ->
                 let vfs = mk_fslib kfs in
                 try
                   while true do
                     (match V.append_file vfs "/f" vblock with
                     | Ok () | Error _ -> ());
                     Sim.advance 200
                   done
                 with e ->
                   fails ("exception escaped in victim: " ^ Printexc.to_string e)))
        in
        spawn_appender ();
        spawn_appender ();
        Sim.advance (2_000 + (137 * !attempt));
        Sim.kill_process ~pid;
        let budget = ref 200_000 in
        while Sim.proc_alive pid && !budget > 0 do
          decr budget;
          Sim.advance 100
        done;
        if Sim.proc_alive pid then fails "victim process did not die"
        else begin
          proc_killed := true;
          match K.reap_process kfs ~pid with
          | Ok () -> reaped := true
          | Error e -> fails ("reap: " ^ E.to_string e)
        end
      done;
      stop := true;
      List.iter
        (fun tid ->
          let b = ref 200_000 in
          while Sim.thread_alive tid && !b > 0 do
            decr b;
            Sim.advance 100
          done;
          if Sim.thread_alive tid then fails "hammer thread failed to stop")
        hammer_tids;
      (match V.append_file fs "/f" dblock with
      | Ok () -> ()
      | Error e -> fails ("driver append: " ^ E.to_string e));
      (match V.read_file fs "/f" with
      | Ok d ->
          if not (untorn d) then
            fails
              (Printf.sprintf "torn content under multi-process hammer (%d \
                               bytes)"
                 (String.length d))
      | Error e -> fails ("final read: " ^ E.to_string e));
      ignore (Zofs.Recovery.recover_all kfs);
      let rep2 = Zofs.Recovery.recover_all kfs in
      fixpoint := Zofs.Recovery.findings rep2 = []);
  Sim.run w;
  (match !failures with [] -> () | m :: _ -> Alcotest.fail m);
  Alcotest.(check bool) "victim process was killed as a unit" true !proc_killed;
  Alcotest.(check bool) "the dead pid was reaped" true !reaped;
  Alcotest.(check bool) "a dead-holder steal crossed processes" true
    (counter_delta snap0 "lease.steals_dead_holder" >= 1);
  Alcotest.(check bool) "hammer processes made progress" true (!hammer_ops > 0);
  Alcotest.(check bool) "fsck fixpoint clean over the residue" true !fixpoint

(* ---- the campaign itself ------------------------------------------------ *)

let test_campaign_smoke () =
  let r = Chaos.run ~seed:42L ~pages:8192 ~min_faults:60 ~max_rounds:200 () in
  (match r.Chaos.c_violations with
  | [] -> ()
  | v :: _ -> Alcotest.fail ("containment violation: " ^ v));
  Alcotest.(check bool) "fault floor reached" true
    (r.Chaos.c_faults_tripped >= 60);
  Alcotest.(check bool) "all four kinds tripped" true
    (r.Chaos.c_media_faults > 0
    && r.Chaos.c_kills_fired > 0
    && r.Chaos.c_transients_tripped > 0
    && r.Chaos.c_scribbles_blocked > 0);
  Alcotest.(check bool) "whole-process kills fired and were reaped" true
    (r.Chaos.c_proc_kills > 0 && r.Chaos.c_procs_reaped >= r.Chaos.c_proc_kills);
  (* the campaign's fault counters must surface on the human-readable
     robustness line (zofs_stat / zofs_shell stats) *)
  let rendered = Obs.Snapshot.render (Obs.Snapshot.take ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "robustness line rendered" true
    (contains rendered "robustness: media-faults")

let test_campaign_negative_selfcheck () =
  Alcotest.(check bool) "quarantine-disabled campaign is flagged" true
    (Chaos.negative_selfcheck ())

(* Acceptance (ISSUE 8): a campaign with injected media faults auto-produces
   a flight-recorder dump that names the quarantined coffer, carries its
   health-transition history, and holds the connected parent/child span
   trace of the faulting op. *)
let test_campaign_flight_dump () =
  let dir = Filename.temp_file "zofs-chaos-flight" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let r =
        Chaos.run ~seed:42L ~pages:8192 ~min_faults:60 ~max_rounds:200
          ~flight_dir:dir ()
      in
      Alcotest.(check bool) "media faults tripped" true
        (r.Chaos.c_media_faults > 0);
      Alcotest.(check bool) "a coffer left Healthy" true
        (r.Chaos.c_quarantined > 0 || r.Chaos.c_offline > 0);
      let path =
        match r.Chaos.c_flight_dumps with
        | p :: _ -> p
        | [] -> Alcotest.fail "campaign produced no flight-recorder dump"
      in
      let j =
        match
          Obs.Json.of_string (In_channel.with_open_bin path In_channel.input_all)
        with
        | Ok j -> j
        | Error e -> Alcotest.failf "dump unparsable: %s" e
      in
      let coffer =
        match Obs.Json.member "coffer" j with
        | Some (Obs.Json.Num c) when c >= 0. -> int_of_float c
        | _ -> Alcotest.fail "dump does not name the triggering coffer"
      in
      (* the named coffer's health history is in the dump and ends in the
         non-Healthy state that triggered it *)
      (match Obs.Json.member "health_history" j with
      | Some (Obs.Json.Obj entries) -> (
          match List.assoc_opt (string_of_int coffer) entries with
          | Some (Obs.Json.Arr (_ :: _ as hist)) ->
              let last = List.nth hist (List.length hist - 1) in
              (match Obs.Json.member "to" last with
              | Some (Obs.Json.Str s) ->
                  Alcotest.(check bool) "last transition leaves Healthy" true
                    (String.lowercase_ascii s <> "healthy")
              | _ -> Alcotest.fail "transition without destination state")
          | _ -> Alcotest.fail "no history for the named coffer")
      | _ -> Alcotest.fail "dump lacks health_history");
      (match Obs.Json.member "events" j with
      | Some (Obs.Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "dump lacks flight events");
      (* the faulting op's span trace is present and parent/child-connected:
         at least one span links to another span in the same dump *)
      match Obs.Json.member "op_trace" j with
      | Some t -> (
          match Obs.Json.member "traceEvents" t with
          | Some (Obs.Json.Arr (_ :: _ as evs)) ->
              let arg k ev =
                match Obs.Json.member "args" ev with
                | Some args -> (
                    match Obs.Json.member k args with
                    | Some (Obs.Json.Num v) -> int_of_float v
                    | _ -> 0)
                | None -> 0
              in
              let ids = List.map (arg "span") evs in
              Alcotest.(check bool) "parent/child links connected" true
                (List.exists
                   (fun ev ->
                     let p = arg "parent" ev in
                     p <> 0 && List.mem p ids)
                   evs)
          | _ -> Alcotest.fail "op_trace has no spans")
      | None -> Alcotest.fail "dump lacks op_trace")

let () =
  Alcotest.run "chaos"
    [
      ( "poison",
        [
          Alcotest.test_case "scrub on write" `Quick test_poison_scrub_on_write;
          Alcotest.test_case "sticky + clear" `Quick test_poison_sticky;
        ] );
      ( "kill",
        [
          Alcotest.test_case "armed kill fires" `Quick test_kill_fires;
          Alcotest.test_case "no-kill region defers" `Quick test_no_kill_defers;
        ] );
      ( "lease",
        [
          Alcotest.test_case "stale release cannot clobber a stolen lease"
            `Quick test_stale_release_cannot_clobber;
          Alcotest.test_case "kill mid-append: steal + size rollback" `Quick
            test_kill_mid_append_steal_repairs;
          Alcotest.test_case "kill mid-truncate: redo converges + fsck"
            `Quick test_kill_mid_truncate_converges;
          Alcotest.test_case "kill mid-ftruncate: steal + roll-forward"
            `Quick test_kill_mid_ftruncate_steal_rolls_forward;
        ] );
      ( "process",
        [
          Alcotest.test_case "whole-process kill mid-append: cross-process \
                              steal + rollback"
            `Quick test_cross_process_kill_mid_append_steal_repairs;
          Alcotest.test_case "whole-process kill mid-ftruncate: cross-process \
                              roll-forward"
            `Quick test_cross_process_kill_mid_ftruncate_rolls_forward;
          Alcotest.test_case "whole-process kill under 4-process hammer"
            `Quick test_whole_process_kill_under_hammer;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "smoke run, no violations" `Slow
            test_campaign_smoke;
          Alcotest.test_case "negative self-check" `Slow
            test_campaign_negative_selfcheck;
          Alcotest.test_case "flight-recorder dump on quarantine" `Slow
            test_campaign_flight_dump;
        ] );
    ]
