(* Safety tests reproducing the paper's §6.5 scenarios: stray writes caught
   by MPK, graceful error return on corrupted coffers, and defence against
   manipulated metadata from a malicious sharer. *)

open Testkit
module V = Treasury.Vfs
module K = Treasury.Kernfs
module E = Treasury.Errno
module D = Nvm.Device
module Ft = Treasury.Fs_types

(* Shared world for the P1/P2 scenarios: C1 is writable by both (uid 0 group
   work), C2 is P2's private coffer. *)
let setup_shared () =
  let w = make_world ~pages:8192 () in
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.mkdir fs "/shared" 0o777);
      (* files in the shared coffer *)
      for i = 1 to 5 do
        ok_or_fail
          (V.write_file fs (Printf.sprintf "/shared/f%d" i) ~mode:0o777
             (Printf.sprintf "shared-%d" i))
      done);
  in_proc ~uid:200 w (fun fs ->
      ok_or_fail (V.write_file fs "/c2data" ~mode:0o600 "P2 private"));
  w

let test_stray_writes_caught_by_mpk () =
  (* P1 sprays random stores over the NVM address space while its MPK
     regions are closed (G1): every store must fault, and P2's concurrent
     file accesses are unaffected (first §6.5 test). *)
  let w = setup_shared () in
  let world = Sim.create () in
  let p1 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let p2 = Sim.Proc.create ~uid:0 ~gid:0 () in
  let stray_faults = ref 0 in
  let p2_errors = ref 0 in
  Sim.spawn world ~proc:p1 ~name:"buggy" (fun () ->
      let fs = vfs w in
      (* Map the shared coffer legitimately... *)
      ok_or_fail (V.write_file fs "/shared/p1" ~mode:0o777 "hello");
      (* ...then go haywire: stores at random NVM addresses with no region
         open.  This models stray writes in application code. *)
      let rng = Sim.Rng.create 0xBAD1L in
      for _ = 1 to 200 do
        let addr = Sim.Rng.int rng (Nvm.Device.size w.dev - 8) in
        match D.write_u64 w.dev addr 0xDEADBEEF with
        | () -> Alcotest.fail "stray write must not succeed"
        | exception Nvm.Fault _ ->
            incr stray_faults;
            Sim.advance 50
      done);
  Sim.spawn world ~proc:p2 ~name:"victim" (fun () ->
      let fs = vfs w in
      for round = 1 to 20 do
        ignore round;
        for i = 1 to 5 do
          match V.read_file fs (Printf.sprintf "/shared/f%d" i) with
          | Ok s ->
              if s <> Printf.sprintf "shared-%d" i then incr p2_errors
          | Error _ -> incr p2_errors
        done;
        Sim.advance 500
      done);
  Sim.run world;
  Alcotest.(check int) "all strays faulted" 200 !stray_faults;
  Alcotest.(check int) "victim never affected" 0 !p2_errors

let test_graceful_error_on_corrupted_coffer () =
  (* P1 corrupts C1's metadata from inside ZoFS's write window (simulating a
     stray write in trusted µFS code); P2 gets file-system errors, not a
     crash (second §6.5 test). *)
  let w = setup_shared () in
  (* P1 corrupts the shared directory's structures. *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = fslib w in
      let ufs = Zofs.Ufs.create w.kfs in
      ignore disp;
      (* map the shared dir's coffer through a legitimate walk *)
      let cid =
        match K.coffer_find w.kfs "/" with
        | Ok c -> c
        | Error _ -> Alcotest.fail "root cid"
      in
      match Zofs.Ufs.map_coffer ufs cid with
      | Error _ -> Alcotest.fail "map"
      | Ok cs ->
          (* Overwrite the shared dir inode's kind and pointers with junk
             while the region is (legitimately) open. *)
          Zofs.Ufs.with_coffer ufs cs ~write:true (fun () ->
              let root_ino = cs.Zofs.Ufs.cs_root_file in
              match Zofs.Dir.lookup w.dev ~ino:root_ino "shared" with
              | Some de ->
                  let dir_ino = de.Zofs.Dir.de_inode in
                  Nvm.Device.write_u32 w.dev (dir_ino + Zofs.Layout.i_kind) 77;
                  Nvm.Device.persist_all w.dev
              | None -> Alcotest.fail "shared dentry"));
  (* P2 accesses files under the corrupted directory: graceful errors. *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = fslib w in
      let fs = Treasury.Dispatcher.as_vfs disp in
      (match V.read_file fs "/shared/f1" with
      | Ok _ -> Alcotest.fail "corruption should surface as an error"
      | Error e ->
          Alcotest.(check bool) "errno-style failure" true
            (e = E.EIO || e = E.ENOTDIR || e = E.ENOENT));
      (* the process is alive and other files still work *)
      ok_or_fail (V.write_file fs "/elsewhere" ~mode:0o777 "fine"))

let test_fault_is_translated_not_propagated () =
  (* Force an actual MPK fault inside a µFS operation and observe the
     dispatcher's graceful conversion (sigsetjmp/siglongjmp analogue). *)
  let w = make_world () in
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = fslib w in
      let fs = Treasury.Dispatcher.as_vfs disp in
      ok_or_fail (V.write_file fs "/f" ~mode:0o777 (String.make 100 'x'));
      (* Corrupt the root directory: make /f's dentry point into an address
         outside every coffer (the path-walk will fault on it). *)
      Mpk.with_kernel w.mpk (fun () ->
          Mpk.with_write_window w.mpk (fun () ->
              let root = K.root_coffer w.kfs in
              let info = Option.get (Treasury.Coffer.read w.dev ~id:root) in
              match
                Zofs.Dir.lookup w.dev ~ino:info.Treasury.Coffer.root_file "f"
              with
              | Some de ->
                  Nvm.Device.write_u64 w.dev
                    (de.Zofs.Dir.de_addr + Zofs.Layout.d_inode)
                    (100 * Nvm.page_size) (* some unmapped kernel page *);
                  Nvm.Device.persist_all w.dev
              | None -> Alcotest.fail "dentry"));
      let before = Treasury.Dispatcher.graceful_error_count disp in
      expect_err E.EIO (V.stat fs "/f");
      Alcotest.(check bool) "fault converted" true
        (Treasury.Dispatcher.graceful_error_count disp > before))

let test_metadata_attack_blocked_by_g3 () =
  (* Third §6.5 scenario: the attacker (P1) manipulates a cross-coffer
     reference in shared coffer C1 to lure the victim (P2) into C2.  The
     victim must detect it and report an error without touching C2. *)
  let w = make_world ~pages:8192 () in
  (* C1: a 0o666 shared coffer under root; C2: victim-only data. *)
  in_proc ~uid:0 w (fun fs ->
      ok_or_fail (V.mkdir fs "/box" 0o777);
      (* a sub-coffer entry inside /box (different perm → cross-coffer
         dentry) *)
      ok_or_fail (V.write_file fs "/box/entry" ~mode:0o640 "sub");
      ok_or_fail (V.write_file fs "/victimdata" ~mode:0o644 "precious"));
  let victim_cid =
    Sim.run_thread (fun () ->
        match K.coffer_find w.kfs "/victimdata" with
        | Ok c -> c
        | Error _ -> Alcotest.fail "victim coffer")
  in
  (* P1 (attacker, has write access to /box's coffer) rewrites the
     cross-coffer dentry to point at the victim coffer. *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let ufs = Zofs.Ufs.create w.kfs in
      ignore (Treasury.Dispatcher.create w.kfs);
      let root = K.root_coffer w.kfs in
      match Zofs.Ufs.map_coffer ufs root with
      | Error _ -> Alcotest.fail "map root"
      | Ok cs ->
          Zofs.Ufs.with_coffer ufs cs ~write:true (fun () ->
              match
                Zofs.Dir.lookup w.dev ~ino:cs.Zofs.Ufs.cs_root_file "box"
              with
              | Some boxde -> (
                  let box_ino = boxde.Zofs.Dir.de_inode in
                  match Zofs.Dir.lookup w.dev ~ino:box_ino "entry" with
                  | Some de ->
                      Nvm.Device.write_u64 w.dev
                        (de.Zofs.Dir.de_addr + Zofs.Layout.d_coffer)
                        victim_cid;
                      Nvm.Device.persist_all w.dev
                  | None -> Alcotest.fail "entry dentry")
              | None -> Alcotest.fail "box dentry"));
  (* P2 (victim) follows the manipulated reference: G3 detects the
     path/root mismatch and reports an error; C2 is never entered. *)
  Sim.run_thread ~proc:(Sim.Proc.create ~uid:0 ~gid:0 ()) (fun () ->
      let disp = fslib w in
      let fs = Treasury.Dispatcher.as_vfs disp in
      (* Anchor the root coffer first so the walk goes through the shared
         coffer's (manipulated) dentries rather than the kernel path map. *)
      ignore (ok_or_fail (V.stat fs "/"));
      (match V.read_file fs "/box/entry" with
      | Ok _ -> Alcotest.fail "manipulated metadata must not resolve"
      | Error e ->
          Alcotest.(check string) "EIO" "EIO" (E.to_string e));
      (* victim's own data remains intact and reachable *)
      Alcotest.(check string) "victim data safe" "precious"
        (ok_or_fail (V.read_file fs "/victimdata")))

let test_readonly_mapping_blocks_modification () =
  (* A process with read-only permission cannot modify the coffer even
     through raw stores with the region key open. *)
  let w = make_world () in
  in_proc ~uid:100 w (fun fs ->
      ok_or_fail (V.write_file fs "/grp" ~mode:0o644 "data"));
  let proc = Sim.Proc.create ~uid:300 ~gid:300 () in
  Sim.run_thread ~proc (fun () ->
      let ufs = Zofs.Ufs.create w.kfs in
      ignore (Treasury.Dispatcher.create w.kfs);
      let cid =
        match K.coffer_find w.kfs "/grp" with
        | Ok c -> c
        | Error _ -> Alcotest.fail "coffer"
      in
      match Zofs.Ufs.map_coffer ufs cid with
      | Error _ -> Alcotest.fail "map ro"
      | Ok cs ->
          Zofs.Ufs.with_coffer ufs cs ~write:true (fun () ->
              (* the PKRU is open for write, but the page-table mapping is
                 read-only: the store faults *)
              match
                Nvm.Device.write_u64 w.dev cs.Zofs.Ufs.cs_root_file 0xEE11
              with
              | () -> Alcotest.fail "read-only mapping must block stores"
              | exception Nvm.Fault _ -> ()))

let test_cross_process_readonly_cannot_write_writable_pages () =
  (* Two live processes sharing one coffer: A (the owner) maps it writable,
     B (group-read only) maps the same pages read-only.  B's raw stores must
     fault on B's own PTEs even while A is actively writing the very same
     pages — A's writable mapping lends B nothing. *)
  let w = make_world ~pages:8192 () in
  in_proc ~uid:100 w (fun fs ->
      ok_or_fail (V.write_file fs "/grp" ~mode:0o644 "data"));
  let world = Sim.create () in
  let pa = Sim.Proc.create ~uid:100 ~gid:100 () in
  let pb = Sim.Proc.create ~uid:300 ~gid:300 () in
  let b_faults = ref 0 in
  Sim.spawn world ~proc:pa ~name:"owner" (fun () ->
      let fs = vfs w in
      for _ = 1 to 10 do
        ok_or_fail (V.append_file fs "/grp" "+");
        Sim.advance 2_000
      done);
  Sim.spawn world ~proc:pb ~at:1_000 ~name:"reader" (fun () ->
      let ufs = Zofs.Ufs.create w.kfs in
      ignore (Treasury.Dispatcher.create w.kfs);
      let cid =
        match K.coffer_find w.kfs "/grp" with
        | Ok c -> c
        | Error _ -> Alcotest.fail "coffer"
      in
      match Zofs.Ufs.map_coffer ufs cid with
      | Error _ -> Alcotest.fail "map ro"
      | Ok cs ->
          for _ = 1 to 10 do
            Zofs.Ufs.with_coffer ufs cs ~write:true (fun () ->
                match
                  Nvm.Device.write_u64 w.dev cs.Zofs.Ufs.cs_root_file 0xEE11
                with
                | () -> Alcotest.fail "read-only mapping must block stores"
                | exception Nvm.Fault _ -> incr b_faults);
            Sim.advance 2_000
          done);
  Sim.run world;
  Alcotest.(check int) "every cross-process store faulted" 10 !b_faults;
  (* A's writes all landed despite B's attempts. *)
  in_proc ~uid:100 w (fun fs ->
      Alcotest.(check string) "owner data intact" "data++++++++++"
        (ok_or_fail (V.read_file fs "/grp")))

let test_killed_process_reaped_without_residue () =
  (* Process A is SIGKILLed mid-append; a surviving driver reaps it.  After
     the reap no protection state of A survives (page table, PKRU), and a
     fresh process B recovers the file through lease expiry + intention
     repair. *)
  let w = setup_shared () in
  let world = Sim.create () in
  let pa = Sim.Proc.create ~uid:0 ~gid:0 () in
  let reaped = ref false in
  let b_result = ref None in
  Sim.spawn world ~proc:pa ~name:"victim" (fun () ->
      let fs = vfs w in
      for _ = 1 to 1000 do
        ignore (V.append_file fs "/shared/f1" "a");
        Sim.advance 100
      done);
  Sim.spawn world ~name:"driver" (fun () ->
      Sim.advance 20_000;
      Sim.kill_process ~pid:pa.Sim.Proc.pid;
      let budget = ref 1000 in
      while Sim.proc_alive pa.Sim.Proc.pid && !budget > 0 do
        decr budget;
        Sim.advance 1_000
      done;
      Alcotest.(check bool) "victim dead" false
        (Sim.proc_alive pa.Sim.Proc.pid);
      (match K.reap_process w.kfs ~pid:pa.Sim.Proc.pid with
      | Ok () -> reaped := true
      | Error e -> Alcotest.failf "reap: %s" (E.to_string e));
      (* No protection residue: A's page table is gone and its threads'
         PKRU entries are dropped. *)
      Alcotest.(check bool) "page table dropped" false
        (Mpk.has_table w.mpk ~pid:pa.Sim.Proc.pid);
      List.iter
        (fun tid ->
          Alcotest.(check bool) "thread PKRU dropped" false
            (Mpk.has_thread_state w.mpk ~tid))
        (Sim.proc_tids pa.Sim.Proc.pid);
      (* A fresh process B can use the file: any lease A held expires and
         the intention record is repaired on the way. *)
      let fs = vfs w in
      b_result :=
        Some
          (match V.append_file fs "/shared/f1" "b" with
          | Ok () -> V.read_file fs "/shared/f1"
          | Error e -> Error e));
  Sim.run world;
  Alcotest.(check bool) "reaped" true !reaped;
  match !b_result with
  | None -> Alcotest.fail "B never ran"
  | Some (Error e) -> Alcotest.failf "B failed: %s" (E.to_string e)
  | Some (Ok s) ->
      Alcotest.(check bool) "B's append landed last" true
        (String.length s > 0 && s.[String.length s - 1] = 'b')

let test_dos_is_bounded_by_leases () =
  (* The paper notes FSLibs can mount DoS attacks by holding leases; leases
     expire, so a stalled holder only delays others. *)
  let w = make_world () in
  let world = Sim.create () in
  let proc = Sim.Proc.create ~uid:0 ~gid:0 () in
  let second_done = ref 0 in
  Sim.spawn world ~proc ~name:"setup" (fun () ->
      let fs = vfs w in
      ok_or_fail (V.write_file fs "/contended" ~mode:0o777 "x"));
  Sim.spawn world ~proc ~at:1_000_000 ~name:"holder" (fun () ->
      (* acquire the inode lease directly and then "die" without release *)
      let ufs = Zofs.Ufs.create w.kfs in
      ignore (Treasury.Dispatcher.create w.kfs);
      let root = K.root_coffer w.kfs in
      match Zofs.Ufs.map_coffer ufs root with
      | Error _ -> ()
      | Ok cs ->
          Zofs.Ufs.with_coffer ufs cs ~write:true (fun () ->
              match
                Zofs.Dir.lookup w.dev ~ino:cs.Zofs.Ufs.cs_root_file "contended"
              with
              | Some de ->
                  Zofs.Lease.acquire w.dev
                    (Zofs.Inode.lease_addr ~ino:de.Zofs.Dir.de_inode)
              | None -> ()))
  ;
  Sim.spawn world ~proc ~at:2_000_000 ~name:"writer" (fun () ->
      let fs = vfs w in
      ok_or_fail (V.append_file fs "/contended" "y");
      second_done := Sim.now ());
  Sim.run world;
  (* The writer eventually completed — after the lease expired. *)
  Alcotest.(check bool) "writer completed" true (!second_done > 0);
  Alcotest.(check bool) "but had to wait for lease expiry" true
    (!second_done >= 1_000_000 + Zofs.Lease.default_duration)

let () =
  Alcotest.run "safety"
    [
      ( "stray-writes",
        [
          Alcotest.test_case "caught by MPK" `Quick test_stray_writes_caught_by_mpk;
          Alcotest.test_case "read-only mapping" `Quick
            test_readonly_mapping_blocks_modification;
          Alcotest.test_case "cross-process read-only vs writable" `Quick
            test_cross_process_readonly_cannot_write_writable_pages;
          Alcotest.test_case "killed process reaped without residue" `Quick
            test_killed_process_reaped_without_residue;
        ] );
      ( "graceful-errors",
        [
          Alcotest.test_case "corrupted coffer" `Quick
            test_graceful_error_on_corrupted_coffer;
          Alcotest.test_case "fault translated" `Quick
            test_fault_is_translated_not_propagated;
        ] );
      ( "metadata-attacks",
        [
          Alcotest.test_case "G3 blocks lure" `Quick
            test_metadata_attack_blocked_by_g3;
          Alcotest.test_case "leases bound DoS" `Quick test_dos_is_bounded_by_leases;
        ] );
    ]
