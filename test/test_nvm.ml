(* Tests for the simulated NVM device: accessors, persistence protocol,
   crash semantics, and cost accounting. *)

module D = Nvm.Device

let mk ?(size = 64 * Nvm.page_size) ?(perf = Nvm.Perf.free) () =
  D.create ~perf ~size ()

let test_scalar_roundtrip () =
  let d = mk () in
  D.write_u8 d 0 0xAB;
  D.write_u16 d 2 0xBEEF;
  D.write_u32 d 4 0xDEADBEEF;
  D.write_u64 d 8 0x1122334455667788;
  Alcotest.(check int) "u8" 0xAB (D.read_u8 d 0);
  Alcotest.(check int) "u16" 0xBEEF (D.read_u16 d 2);
  Alcotest.(check int) "u32" 0xDEADBEEF (D.read_u32 d 4);
  Alcotest.(check int) "u64" 0x1122334455667788 (D.read_u64 d 8)

let test_truncation () =
  let d = mk () in
  D.write_u8 d 0 0x1FF;
  Alcotest.(check int) "u8 truncated" 0xFF (D.read_u8 d 0);
  D.write_u16 d 2 0x12345;
  Alcotest.(check int) "u16 truncated" 0x2345 (D.read_u16 d 2)

let test_zero_initialized () =
  let d = mk () in
  Alcotest.(check int) "fresh page is zero" 0 (D.read_u64 d (17 * Nvm.page_size));
  Alcotest.(check string) "fresh string" (String.make 8 '\000')
    (D.read_string d 123 8)

let test_string_roundtrip () =
  let d = mk () in
  D.write_string d 100 "hello coffer";
  Alcotest.(check string) "string" "hello coffer" (D.read_string d 100 12)

let test_blit_crosses_pages () =
  let d = mk () in
  let s = String.init 10000 (fun i -> Char.chr (i mod 256)) in
  D.write_string d (Nvm.page_size - 100) s;
  Alcotest.(check string) "cross-page blit" s
    (D.read_string d (Nvm.page_size - 100) 10000)

let test_scalar_page_cross_rejected () =
  let d = mk () in
  Alcotest.check_raises "u64 across page boundary"
    (Invalid_argument "Nvm: scalar access crosses a page boundary") (fun () ->
      D.write_u64 d (Nvm.page_size - 4) 1)

let test_bounds () =
  let d = mk ~size:(2 * Nvm.page_size) () in
  Alcotest.check_raises "past end"
    (Invalid_argument "Nvm: access [8192, 8200) out of device [0, 8192)")
    (fun () -> ignore (D.read_u64 d (2 * Nvm.page_size)))

let test_fill_and_copy () =
  let d = mk () in
  D.fill d 50 20 'x';
  Alcotest.(check string) "fill" (String.make 20 'x') (D.read_string d 50 20);
  D.copy_within d ~src:50 ~dst:500 ~len:20;
  Alcotest.(check string) "copy" (String.make 20 'x') (D.read_string d 500 20)

(* --- persistence ------------------------------------------------------- *)

let test_unflushed_lost_on_crash () =
  let d = mk () in
  D.write_u64 d 0 42;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "lost" 0 (D.read_u64 d 0)

let test_flushed_survives_crash () =
  let d = mk () in
  D.write_u64 d 0 42;
  D.clwb d 0;
  D.sfence d;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "survived" 42 (D.read_u64 d 0)

let test_clwb_without_fence_not_durable () =
  let d = mk () in
  D.write_u64 d 0 42;
  D.clwb d 0;
  (* no fence: write-back may not have completed *)
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "not durable before fence" 0 (D.read_u64 d 0)

let test_nt_write_durable_after_fence () =
  let d = mk () in
  D.nt_write_u64 d 0 99;
  D.sfence d;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "ntstore durable" 99 (D.read_u64 d 0)

let test_persist_range () =
  let d = mk () in
  D.write_string d 1000 (String.make 300 'z');
  D.persist_range d 1000 300;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check string) "range persisted" (String.make 300 'z')
    (D.read_string d 1000 300)

let test_partial_line_granularity () =
  (* Flushing one line must not persist a different dirty line. *)
  let d = mk () in
  D.write_u64 d 0 1;
  D.write_u64 d 128 2;
  (* separate line *)
  D.persist_range d 0 8;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "flushed line" 1 (D.read_u64 d 0);
  Alcotest.(check int) "unflushed line" 0 (D.read_u64 d 128)

let test_keep_all_crash () =
  let d = mk () in
  D.write_u64 d 0 7;
  D.crash ~policy:`Keep_all d;
  Alcotest.(check int) "kept" 7 (D.read_u64 d 0)

let test_crash_resets_to_last_persisted () =
  let d = mk () in
  D.write_u64 d 0 1;
  D.persist_range d 0 8;
  D.write_u64 d 0 2;
  (* overwrite, not persisted *)
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "old value restored" 1 (D.read_u64 d 0)

let test_pending_lines_counter () =
  let d = mk () in
  Alcotest.(check int) "initially clean" 0 (D.pending_lines d);
  D.write_u64 d 0 1;
  D.write_u64 d 8 1;
  (* same line *)
  Alcotest.(check int) "one line" 1 (D.pending_lines d);
  D.write_u64 d 64 1;
  Alcotest.(check int) "two lines" 2 (D.pending_lines d);
  D.persist_all d;
  Alcotest.(check int) "clean after persist_all" 0 (D.pending_lines d)

let test_persist_all_durable () =
  let d = mk () in
  D.write_string d 0 "abcdef";
  D.persist_all d;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check string) "persist_all" "abcdef" (D.read_string d 0 6)

let test_random_crash_policy_is_per_line () =
  (* With many independent lines pending, a `Random crash should keep some
     and drop some (probability of all-same is 2^-63). *)
  let d = mk () in
  for i = 0 to 63 do
    D.write_u64 d (i * Nvm.line_size) 1
  done;
  D.crash d;
  let kept = ref 0 in
  for i = 0 to 63 do
    if D.read_u64 d (i * Nvm.line_size) = 1 then incr kept
  done;
  Alcotest.(check bool) "some kept" true (!kept > 0);
  Alcotest.(check bool) "some dropped" true (!kept < 64)

(* --- snapshot / restore ------------------------------------------------- *)

let test_snapshot_restores_both_views () =
  let d = mk () in
  D.write_string d 0 "durable";
  D.persist_all d;
  D.write_string d 100 "volatile-only";
  let snap = D.snapshot d in
  (* Diverge: overwrite, persist new data, touch a fresh page. *)
  D.write_string d 0 "clobber";
  D.write_string d 100 "clobber-vol11";
  D.persist_all d;
  D.write_string d (10 * Nvm.page_size) "new page";
  D.restore d snap;
  Alcotest.(check string) "volatile view" "volatile-only" (D.read_string d 100 13);
  Alcotest.(check string)
    "fresh page gone" (String.make 8 '\000')
    (D.read_string d (10 * Nvm.page_size) 8);
  D.crash ~policy:`Drop_all d;
  Alcotest.(check string) "durable view" "durable" (D.read_string d 0 7);
  Alcotest.(check string)
    "unpersisted dropped" (String.make 13 '\000')
    (D.read_string d 100 13)

let test_snapshot_captures_pending_lines () =
  let d = mk () in
  D.write_u64 d 0 1;
  D.write_u64 d 64 2;
  D.clwb d 64 (* flushing but not fenced *);
  let snap = D.snapshot d in
  D.persist_all d;
  Alcotest.(check int) "drained" 0 (D.pending_lines d);
  D.restore d snap;
  Alcotest.(check int) "pending restored" 2 (D.pending_lines d);
  (* The restored flushing line becomes durable at the next fence; the
     dirty-but-unflushed line does not. *)
  D.sfence d;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "dirty line lost" 0 (D.read_u64 d 0);
  Alcotest.(check int) "flushing line persisted" 2 (D.read_u64 d 64)

let test_restore_is_reusable () =
  let d = mk () in
  D.write_u64 d 0 7;
  let snap = D.snapshot d in
  for round = 1 to 3 do
    D.restore d snap;
    Alcotest.(check int)
      (Printf.sprintf "round %d sees snapshot value" round)
      7 (D.read_u64 d 0);
    D.write_u64 d 0 (100 + round);
    D.persist_all d
  done;
  D.restore d snap;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "branch writes don't leak into snapshot" 0
    (D.read_u64 d 0)

let test_snapshot_captures_crash_rng () =
  let d = mk () in
  D.write_u64 d 0 1;
  let snap = D.snapshot d in
  let survival () =
    let kept = ref [] in
    for i = 0 to 63 do
      D.write_u64 d (i * Nvm.line_size) 1
    done;
    D.crash d;
    for i = 0 to 63 do
      if D.read_u64 d (i * Nvm.line_size) = 1 then kept := i :: !kept
    done;
    !kept
  in
  let first = survival () in
  D.restore d snap;
  let second = survival () in
  Alcotest.(check (list int)) "same RNG stream after restore" first second

let test_set_crash_seed_reproducible () =
  let d = mk () in
  let run seed =
    D.write_u64 d 0 1;
    D.persist_all d;
    let kept = ref [] in
    for i = 0 to 63 do
      D.write_u64 d (i * Nvm.line_size) 9
    done;
    D.set_crash_seed d seed;
    D.crash d;
    for i = 0 to 63 do
      if D.read_u64 d (i * Nvm.line_size) = 9 then kept := i :: !kept
    done;
    !kept
  in
  let a = run 1234L and b = run 1234L and c = run 99L in
  Alcotest.(check (list int)) "same seed, same pattern" a b;
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_inject_drop_fences () =
  let d = mk () in
  D.write_u64 d 0 42;
  D.clwb d 0;
  D.inject_drop_fences d 1;
  D.sfence d (* dropped: a no-op *);
  Alcotest.(check int) "line still pending" 1 (D.pending_lines d);
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "nothing persisted" 0 (D.read_u64 d 0);
  (* Disarmed after the budget is spent: the next fence is real. *)
  D.write_u64 d 0 43;
  D.clwb d 0;
  D.sfence d;
  D.crash ~policy:`Drop_all d;
  Alcotest.(check int) "later fence works" 43 (D.read_u64 d 0)

(* --- cost model -------------------------------------------------------- *)

let test_read_latency_charged () =
  let d = D.create ~perf:Nvm.Perf.optane ~size:(64 * Nvm.page_size) () in
  let t =
    Sim.run_thread (fun () ->
        ignore (D.read_u64 d 0);
        Sim.now ())
  in
  Alcotest.(check int) "miss costs read latency" 305 t

let test_cache_hit_cheap () =
  let d = D.create ~perf:Nvm.Perf.optane ~size:(64 * Nvm.page_size) () in
  let t =
    Sim.run_thread (fun () ->
        ignore (D.read_u64 d 0);
        let t0 = Sim.now () in
        ignore (D.read_u64 d 8);
        (* same line: hit *)
        Sim.now () - t0)
  in
  Alcotest.(check int) "hit cost" 2 t

let test_pollute_cache () =
  let d = D.create ~perf:Nvm.Perf.optane ~size:(64 * Nvm.page_size) () in
  let t =
    Sim.run_thread (fun () ->
        ignore (D.read_u64 d 0);
        (* pollution evicts a 1/8 window per call; 8 calls sweep the cache *)
        for _ = 1 to 8 do
          D.pollute_cache d
        done;
        let t0 = Sim.now () in
        ignore (D.read_u64 d 0);
        Sim.now () - t0)
  in
  Alcotest.(check int) "miss again after pollution" 305 t

let test_fence_cost () =
  let d = D.create ~perf:Nvm.Perf.optane ~size:(64 * Nvm.page_size) () in
  let t =
    Sim.run_thread (fun () ->
        D.write_u64 d 0 1;
        let t0 = Sim.now () in
        D.clwb d 0;
        D.sfence d;
        Sim.now () - t0)
  in
  (* clwb instruction (4) + 64B writeback bandwidth (64/14 = 4ns) + fence
     (30) + write latency (94) *)
  Alcotest.(check int) "flush+fence cost" 132 t

let test_stats_counted () =
  let d = mk () in
  D.reset_stats d;
  ignore (D.read_u64 d 0);
  D.write_u64 d 0 1;
  D.clwb d 0;
  D.sfence d;
  Alcotest.(check int) "reads" 1 (D.stat_reads d);
  Alcotest.(check int) "writes" 1 (D.stat_writes d);
  Alcotest.(check int) "flushes" 1 (D.stat_flushes d);
  Alcotest.(check int) "fences" 1 (D.stat_fences d)

let test_protection_hook_called () =
  let d = mk () in
  let log = ref [] in
  D.set_protection_hook d (fun ~addr ~write -> log := (addr, write) :: !log);
  D.write_u64 d 8 1;
  ignore (D.read_u64 d 16);
  Alcotest.(check (list (pair int bool)))
    "hook calls"
    [ (16, false); (8, true) ]
    !log;
  D.clear_protection_hook d;
  D.write_u64 d 24 1;
  Alcotest.(check int) "no more calls" 2 (List.length !log)

let test_protection_hook_can_block () =
  let d = mk () in
  D.set_protection_hook d (fun ~addr ~write ->
      if write then raise (Nvm.Fault { addr; write; kind = Nvm.Protection; reason = "ro" }));
  ignore (D.read_u64 d 0);
  Alcotest.check_raises "write faults"
    (Nvm.Fault { addr = 0; write = true; kind = Nvm.Protection; reason = "ro" }) (fun () ->
      D.write_u64 d 0 1)

(* --- property tests ---------------------------------------------------- *)

let qcheck_persisted_data_survives =
  QCheck.Test.make ~name:"persisted writes always survive a crash" ~count:50
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (pair (int_range 0 1000)
           (string_gen_of_size (Gen.int_range 1 50) Gen.printable)))
    (fun writes ->
      let d = mk ~size:(64 * Nvm.page_size) () in
      (* Apply writes at non-overlapping offsets spaced 4 KB apart. *)
      let entries =
        List.mapi (fun i (off, s) -> ((i * 2048) + (off mod 1024), s)) writes
      in
      List.iter (fun (addr, s) -> D.write_string d addr s) entries;
      D.persist_all d;
      D.crash d;
      List.for_all
        (fun (addr, s) -> D.read_string d addr (String.length s) = s)
        entries)

let qcheck_unpersisted_never_leaks_past_drop_all =
  QCheck.Test.make ~name:"drop_all crash erases all unflushed writes" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 4000))
    (fun offs ->
      let d = mk ~size:(64 * Nvm.page_size) () in
      List.iter (fun off -> D.write_u8 d off 0xFF) offs;
      D.crash ~policy:`Drop_all d;
      List.for_all (fun off -> D.read_u8 d off = 0) offs)

let () =
  Alcotest.run "nvm"
    [
      ( "accessors",
        [
          Alcotest.test_case "scalar roundtrip" `Quick test_scalar_roundtrip;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "zero initialized" `Quick test_zero_initialized;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "blit across pages" `Quick test_blit_crosses_pages;
          Alcotest.test_case "scalar page-cross rejected" `Quick
            test_scalar_page_cross_rejected;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "fill and copy" `Quick test_fill_and_copy;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed lost" `Quick test_unflushed_lost_on_crash;
          Alcotest.test_case "flushed survives" `Quick test_flushed_survives_crash;
          Alcotest.test_case "clwb without fence" `Quick
            test_clwb_without_fence_not_durable;
          Alcotest.test_case "ntstore durable after fence" `Quick
            test_nt_write_durable_after_fence;
          Alcotest.test_case "persist_range" `Quick test_persist_range;
          Alcotest.test_case "line granularity" `Quick test_partial_line_granularity;
          Alcotest.test_case "keep_all crash" `Quick test_keep_all_crash;
          Alcotest.test_case "reset to last persisted" `Quick
            test_crash_resets_to_last_persisted;
          Alcotest.test_case "pending lines counter" `Quick test_pending_lines_counter;
          Alcotest.test_case "persist_all durable" `Quick test_persist_all_durable;
          Alcotest.test_case "random crash is per-line" `Quick
            test_random_crash_policy_is_per_line;
          QCheck_alcotest.to_alcotest qcheck_persisted_data_survives;
          QCheck_alcotest.to_alcotest qcheck_unpersisted_never_leaks_past_drop_all;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restores both views" `Quick
            test_snapshot_restores_both_views;
          Alcotest.test_case "captures pending lines" `Quick
            test_snapshot_captures_pending_lines;
          Alcotest.test_case "restore is reusable" `Quick test_restore_is_reusable;
          Alcotest.test_case "captures crash rng" `Quick
            test_snapshot_captures_crash_rng;
          Alcotest.test_case "set_crash_seed reproducible" `Quick
            test_set_crash_seed_reproducible;
          Alcotest.test_case "inject_drop_fences" `Quick test_inject_drop_fences;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "read latency" `Quick test_read_latency_charged;
          Alcotest.test_case "cache hit" `Quick test_cache_hit_cheap;
          Alcotest.test_case "pollute cache" `Quick test_pollute_cache;
          Alcotest.test_case "flush+fence cost" `Quick test_fence_cost;
          Alcotest.test_case "stats" `Quick test_stats_counted;
        ] );
      ( "protection-hook",
        [
          Alcotest.test_case "hook called" `Quick test_protection_hook_called;
          Alcotest.test_case "hook can block" `Quick test_protection_hook_can_block;
        ] );
    ]
