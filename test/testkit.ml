(* Shared setup for ZoFS integration tests: device + MPK + KernFS + ZoFS +
   a per-process FSLibs dispatcher exposed through the Vfs interface. *)

module K = Treasury.Kernfs
module E = Treasury.Errno

type world = {
  dev : Nvm.Device.t;
  mpk : Mpk.t;
  kfs : K.t;
}

(* Create a formatted ZoFS world.  [root_mode] defaults to 0o777 so arbitrary
   test users can create files under "/". *)
let make_world ?(pages = 4096) ?(perf = Nvm.Perf.free) ?(root_mode = 0o777) () =
  let dev = Nvm.Device.create ~perf ~size:(pages * Nvm.page_size) () in
  let mpk = Mpk.create dev in
  let kfs =
    K.mkfs dev mpk ~nbuckets:512 ~root_ctype:Zofs.Ufs.ctype ~root_mode
      ~root_uid:0 ~root_gid:0 ()
  in
  Zofs.Ufs.mkfs kfs;
  { dev; mpk; kfs }

(* An FSLibs instance (dispatcher + ZoFS µFS) for the calling process. *)
let fslib ?variant w =
  let disp = Treasury.Dispatcher.create w.kfs in
  let ufs = Zofs.Ufs.create ?variant w.kfs in
  Treasury.Dispatcher.register_ufs disp (module Zofs.Ufs) ufs;
  disp

let vfs ?variant w = Treasury.Dispatcher.as_vfs (fslib ?variant w)

(* Run [f] in a fresh simulated process/thread with its own FSLibs. *)
let in_proc ?(uid = 1000) ?variant w f =
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  Sim.run_thread ~proc (fun () -> f (vfs ?variant w))

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error %s" (E.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected error %s" (E.to_string expected)
  | Error e ->
      Alcotest.(check string) "errno" (E.to_string expected) (E.to_string e)

(* --- seeded randomness (property tests / crash exploration) -------------- *)

(* All test randomness flows from an explicit seed through the simulator's
   splitmix64 PRNG, so any failing case replays exactly from its seed. *)
let rng seed = Sim.Rng.create seed

(* Seeded random op sequences over a bounded namespace (lib/workloads).
   The same generator feeds the crash checker's sampled long histories and
   the oracle-agreement property test, so both explore the same op
   distribution. *)
let random_ops ?mode600_every ?max_len ~seed ~nops () =
  Workloads.Opscript.generate ?mode600_every ?max_len ~seed ~nops ()

let random_script ?mode600_every ?max_len ~seed ~nops () =
  Workloads.Opscript.random_script ?mode600_every ?max_len ~seed ~nops ()
