(* Tests for the analysis layer (lib/check): deliberately-buggy µFS-style
   snippets proving each rule fires, plus clean counterparts proving the
   rules stay silent on disciplined code. *)

module D = Nvm.Device
module V = Treasury.Vfs

let pg = Nvm.page_size

let rules () =
  List.map (fun v -> v.Check.v_rule) (Check.report ()).Check.r_violations

let labels () =
  List.map (fun v -> v.Check.v_label) (Check.report ()).Check.r_violations

let lint_count name =
  match List.assoc_opt name (Check.report ()).Check.r_lints with
  | Some n -> n
  | None -> 0

let with_dev ?(persist = Check.Off) ?(guideline = Check.Off) ?(lock = Check.Off)
    f =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(64 * pg) () in
  let _t = Check.attach ~persist ~guideline ~lock dev in
  Check.reset_report ();
  Fun.protect
    ~finally:(fun () ->
      Check.detach ();
      Check.reset_report ())
    (fun () -> f dev)

let with_mpk ?(persist = Check.Off) ?(guideline = Check.Off) ?(lock = Check.Off)
    f =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(64 * pg) () in
  let mpk = Mpk.create dev in
  let _t = Check.attach ~mpk ~persist ~guideline ~lock dev in
  Check.reset_report ();
  Fun.protect
    ~finally:(fun () ->
      Check.detach ();
      Check.reset_report ())
    (fun () -> f dev mpk)

(* ---- persistence checker ------------------------------------------------ *)

(* Buggy µFS snippet 1: commit an "inode" without flushing its fields. *)
let test_missing_flush () =
  with_dev ~persist:Check.Log (fun dev ->
      D.write_u64 dev 0 42 (* set a size field... *);
      (* ...and publish without clwb/sfence *)
      Check.publish dev ~label:"inode-commit" 0 64;
      Alcotest.(check (list string)) "fires" [ "missing-flush" ] (rules ()))

(* Buggy µFS snippet 2: flush but forget the fence before publishing. *)
let test_missing_fence () =
  with_dev ~persist:Check.Log (fun dev ->
      D.write_u64 dev 0 42;
      D.flush_range dev 0 8;
      Check.publish dev ~label:"dentry-insert" 0 64;
      Alcotest.(check (list string)) "fires" [ "missing-fence" ] (rules ()))

let test_clean_publish () =
  with_dev ~persist:Check.Log (fun dev ->
      D.write_u64 dev 0 42;
      D.persist_range dev 0 8;
      Check.publish dev ~label:"inode-commit" 0 64;
      D.nt_write_u64 dev 64 7;
      D.sfence dev;
      Check.publish dev ~label:"dentry-insert" 64 8;
      Alcotest.(check (list string)) "silent" [] (rules ()))

let test_publish_is_range_scoped () =
  with_dev ~persist:Check.Log (fun dev ->
      (* dirty line far away from the published range: not this publish's
         problem (the balloc free list relies on this) *)
      D.write_u64 dev (10 * pg) 1;
      D.write_u64 dev 0 42;
      D.persist_range dev 0 8;
      Check.publish dev ~label:"inode-commit" 0 64;
      Alcotest.(check (list string)) "silent" [] (rules ()))

let test_fail_mode_raises () =
  with_dev ~persist:Check.Fail (fun dev ->
      D.write_u64 dev 0 42;
      match Check.publish dev ~label:"inode-commit" 0 64 with
      | () -> Alcotest.fail "expected Violation"
      | exception Check.Violation v ->
          Alcotest.(check string) "rule" "missing-flush" v.Check.v_rule;
          Alcotest.(check string) "label" "inode-commit" v.Check.v_label)

let test_redundant_lints_and_stats () =
  with_dev ~persist:Check.Log (fun dev ->
      D.reset_stats dev;
      D.sfence dev (* nothing flushing *);
      D.write_u64 dev 0 1;
      D.clwb dev 0;
      D.clwb dev 0 (* already flushing *);
      D.sfence dev;
      D.clwb dev 0 (* clean line *);
      Alcotest.(check int) "device redundant fences" 1
        (D.stat_redundant_fences dev);
      Alcotest.(check int) "device redundant flushes" 2
        (D.stat_redundant_flushes dev);
      Alcotest.(check int) "lint redundant-fence" 1 (lint_count "redundant-fence");
      Alcotest.(check int) "lint redundant-flush" 2 (lint_count "redundant-flush");
      Alcotest.(check (list string)) "lints never fail" [] (rules ());
      D.reset_stats dev;
      Alcotest.(check int) "stats reset" 0 (D.stat_redundant_fences dev))

let test_overwrite_lint () =
  with_dev ~persist:Check.Log (fun dev ->
      D.write_u64 dev 0 1;
      D.write_u64 dev 0 2 (* overwritten before flush *);
      Alcotest.(check bool) "lint counted" true
        (lint_count "store-overwritten-before-flush" >= 1);
      Alcotest.(check (list string)) "lints never fail" [] (rules ()))

(* ---- guideline checker -------------------------------------------------- *)

let in_proc ?(uid = 1000) f =
  let proc = Sim.Proc.create ~uid ~gid:uid () in
  Sim.run_thread ~proc (fun () -> f proc)

(* Buggy µFS snippet 3 (G1): touch coffer NVM with a raw PKRU write instead
   of a with_keys coffer window. *)
let test_g1_access_outside_window () =
  with_mpk ~guideline:Check.Log (fun dev mpk ->
      in_proc (fun p ->
          Mpk.map_page mpk ~pid:p.Sim.Proc.pid ~page:2 ~writable:true ~pkey:3;
          Mpk.wrpkru mpk [ (3, Mpk.Pk_read_write) ];
          D.write_u64 dev (2 * pg) 1 (* no window open *);
          Alcotest.(check (list string)) "fires" [ "G1" ] (rules ());
          Check.reset_report ();
          Mpk.with_keys mpk [ (3, Mpk.Pk_read_write) ] (fun () ->
              D.write_u64 dev (2 * pg) 2);
          Alcotest.(check (list string)) "window is clean" [] (rules ())))

(* Buggy µFS snippet 4 (G2): open two coffers for writing at once. *)
let test_g2_two_writable_coffers () =
  with_mpk ~guideline:Check.Log (fun _dev mpk ->
      in_proc (fun _ ->
          Mpk.with_keys mpk
            [ (1, Mpk.Pk_read_write); (2, Mpk.Pk_read_write) ]
            (fun () -> ());
          Alcotest.(check (list string)) "fires" [ "G2" ] (rules ());
          Check.reset_report ();
          (* one writable + one read-only is within the guideline *)
          Mpk.with_keys mpk
            [ (1, Mpk.Pk_read_write); (2, Mpk.Pk_read) ]
            (fun () -> ());
          Alcotest.(check (list string)) "ro second key ok" [] (rules ())))

(* Buggy µFS snippet 5 (G3): dereference a cross-coffer dentry target
   without validating it against the kernel first. *)
let test_g3_unvalidated_cross_deref () =
  with_dev ~guideline:Check.Log (fun dev ->
      Sim.run_thread (fun () ->
          let target = 4 * pg in
          Zofs.Dir.write_dentry dev pg ~name:"evil"
            ~kind:Zofs.Layout.kind_regular ~coffer:7 ~inode:target;
          (match Zofs.Dir.read_dentry dev pg with
          | Some de -> ignore (D.read_u64 dev de.Zofs.Dir.de_inode)
          | None -> Alcotest.fail "dentry should read back");
          Alcotest.(check (list string)) "fires" [ "G3" ] (rules ());
          Check.reset_report ();
          (* validated path: same read after validate_cross is clean *)
          ignore (Zofs.Dir.read_dentry dev pg);
          Check.validate_cross dev target;
          ignore (D.read_u64 dev target);
          Alcotest.(check (list string)) "validated deref ok" [] (rules ())))

(* ---- lock-discipline checker -------------------------------------------- *)

(* Buggy µFS snippet 6: write to a lease-protected inode without holding
   its lease. *)
let test_write_without_lease () =
  with_dev ~lock:Check.Log (fun dev ->
      Sim.run_thread (fun () ->
          let ino = 2 * pg in
          Zofs.Inode.init dev ~ino ~kind:Zofs.Inode.Regular ~mode:0o644 ~uid:0
            ~gid:0;
          (* initialization before the first acquire is grace-period quiet *)
          Alcotest.(check (list string)) "init quiet" [] (rules ());
          let lease = Zofs.Inode.lease_addr ~ino in
          Zofs.Lease.with_lease dev lease (fun () ->
              Zofs.Inode.set_size dev ~ino 10);
          Alcotest.(check (list string)) "locked write ok" [] (rules ());
          Zofs.Inode.set_mode dev ~ino 0o600 (* no lease held *);
          Alcotest.(check (list string)) "fires" [ "write-without-lease" ]
            (rules ())))

let test_lease_pairing () =
  with_dev ~lock:Check.Log (fun dev ->
      Sim.run_thread (fun () ->
          let lease = 3 * pg in
          Zofs.Lease.acquire dev lease;
          Zofs.Lease.acquire dev lease (* re-acquire while held *);
          Zofs.Lease.release dev lease;
          Zofs.Lease.release dev lease (* second release unpaired *);
          Alcotest.(check (list string))
            "pairing violations"
            [ "double-acquire"; "unpaired-release" ]
            (rules ())))

(* Releasing a lease publishes the structure it protects. *)
let test_lease_release_is_publish_point () =
  with_dev ~persist:Check.Log ~lock:Check.Log (fun dev ->
      Sim.run_thread (fun () ->
          let ino = 2 * pg in
          Zofs.Inode.init dev ~ino ~kind:Zofs.Inode.Regular ~mode:0o644 ~uid:0
            ~gid:0;
          Alcotest.(check (list string)) "init publishes clean" [] (rules ());
          let lease = Zofs.Inode.lease_addr ~ino in
          Zofs.Lease.with_lease dev lease (fun () ->
              (* dirty a block pointer and "forget" to persist it *)
              D.write_u64 dev (ino + Zofs.Layout.i_direct) 777);
          Alcotest.(check (list string)) "fires" [ "missing-flush" ] (rules ());
          Alcotest.(check (list string)) "at release" [ "lease-release" ]
            (labels ());
          (* the lease word itself is exempt: an acquire/release cycle with
             a properly persisted payload is clean *)
          D.persist_range dev (ino + Zofs.Layout.i_direct) 8;
          Check.reset_report ();
          Zofs.Lease.with_lease dev lease (fun () ->
              Zofs.Inode.set_size dev ~ino 4096);
          Alcotest.(check (list string)) "lease word exempt" [] (rules ())))

(* ---- end-to-end: the real µFS under all checkers in fail mode ---------- *)

let test_real_fs_clean_under_fail () =
  let dev = D.create ~perf:Nvm.Perf.free ~size:(4096 * pg) () in
  let mpk = Mpk.create dev in
  let _t =
    Check.attach ~mpk ~persist:Check.Fail ~guideline:Check.Fail
      ~lock:Check.Fail dev
  in
  Check.reset_report ();
  Fun.protect
    ~finally:(fun () ->
      Check.detach ();
      Check.reset_report ())
    (fun () ->
      let kfs =
        Treasury.Kernfs.mkfs dev mpk ~nbuckets:512 ~root_ctype:Zofs.Ufs.ctype
          ~root_mode:0o777 ~root_uid:0 ~root_gid:0 ()
      in
      Zofs.Ufs.mkfs kfs;
      let w = { Testkit.dev; mpk; kfs } in
      Testkit.in_proc w (fun fs ->
          Testkit.ok_or_fail (V.mkdir fs "/d" 0o755);
          Testkit.ok_or_fail (V.write_file fs "/d/a" ~mode:0o644 "hello");
          Alcotest.(check string)
            "read back" "hello"
            (Testkit.ok_or_fail (V.read_file fs "/d/a"));
          Testkit.ok_or_fail (V.rename fs "/d/a" "/d/b");
          Testkit.ok_or_fail (V.append_file fs "/d/b" " world");
          Testkit.ok_or_fail (V.unlink fs "/d/b");
          Testkit.ok_or_fail (V.rmdir fs "/d"));
      Alcotest.(check (list string)) "no violations" [] (rules ()))

(* ---- report plumbing ---------------------------------------------------- *)

let test_off_mode_silent () =
  with_dev ~persist:Check.Off (fun dev ->
      D.write_u64 dev 0 1;
      Check.publish dev ~label:"inode-commit" 0 64;
      Alcotest.(check (list string)) "off" [] (rules ()))

let test_detached_device_ignored () =
  with_dev ~persist:Check.Log (fun _dev ->
      let other = D.create ~perf:Nvm.Perf.free ~size:pg () in
      D.write_u64 other 0 1;
      Check.publish other ~label:"inode-commit" 0 64;
      Alcotest.(check (list string)) "other device untracked" [] (rules ()))

let () =
  Alcotest.run "check"
    [
      ( "persist",
        [
          Alcotest.test_case "missing flush" `Quick test_missing_flush;
          Alcotest.test_case "missing fence" `Quick test_missing_fence;
          Alcotest.test_case "clean publish" `Quick test_clean_publish;
          Alcotest.test_case "range scoped" `Quick test_publish_is_range_scoped;
          Alcotest.test_case "fail mode raises" `Quick test_fail_mode_raises;
          Alcotest.test_case "redundant lints + stats" `Quick
            test_redundant_lints_and_stats;
          Alcotest.test_case "overwrite lint" `Quick test_overwrite_lint;
        ] );
      ( "guideline",
        [
          Alcotest.test_case "G1 outside window" `Quick
            test_g1_access_outside_window;
          Alcotest.test_case "G2 two writable" `Quick
            test_g2_two_writable_coffers;
          Alcotest.test_case "G3 unvalidated deref" `Quick
            test_g3_unvalidated_cross_deref;
        ] );
      ( "lock",
        [
          Alcotest.test_case "write without lease" `Quick
            test_write_without_lease;
          Alcotest.test_case "acquire/release pairing" `Quick
            test_lease_pairing;
          Alcotest.test_case "release is publish point" `Quick
            test_lease_release_is_publish_point;
        ] );
      ( "integration",
        [
          Alcotest.test_case "real FS clean under fail" `Quick
            test_real_fs_clean_under_fail;
          Alcotest.test_case "off mode silent" `Quick test_off_mode_silent;
          Alcotest.test_case "other devices ignored" `Quick
            test_detached_device_ignored;
        ] );
    ]
